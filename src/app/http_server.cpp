#include "app/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace bwaver {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 410: return "Gone";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

/// Percent- and '+'-decoding for query strings; malformed escapes pass
/// through verbatim.
std::string url_decode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size() &&
               std::isxdigit(static_cast<unsigned char>(s[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(s[i + 2]))) {
      out.push_back(static_cast<char>(std::stoi(s.substr(i + 1, 2), nullptr, 16)));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::map<std::string, std::string> parse_query(const std::string& query) {
  std::map<std::string, std::string> params;
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    pos = amp + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      params[url_decode(pair)] = "";
    } else {
      params[url_decode(pair.substr(0, eq))] = url_decode(pair.substr(eq + 1));
    }
  }
  return params;
}

bool send_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    // MSG_NOSIGNAL: a peer that hangs up mid-response (a pooled client
    // retiring the connection, a killed router) must surface as EPIPE here,
    // not as a process-wide SIGPIPE.
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n <= 0) return false;
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Keep-alive grant advertised on a response: none (close), or a timeout
/// plus how many further requests this connection may carry.
struct KeepAliveGrant {
  bool keep = false;
  std::chrono::milliseconds timeout{0};
  std::size_t remaining = 0;
};

void send_response(int fd, const HttpResponse& response,
                   const KeepAliveGrant& grant = KeepAliveGrant{}) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     status_text(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.headers) {
    head += name + ": " + value + "\r\n";
  }
  if (grant.keep) {
    head += "Connection: keep-alive\r\n";
    head += "Keep-Alive: timeout=" +
            std::to_string(grant.timeout.count() / 1000) + ", max=" +
            std::to_string(grant.remaining) + "\r\n\r\n";
  } else {
    head += "Connection: close\r\n\r\n";
  }
  if (send_all(fd, head.data(), head.size()) && !response.body.empty()) {
    send_all(fd, response.body.data(), response.body.size());
  }
}

/// One poll+recv with a timeout; appends to `buffer`. Returns false on
/// timeout, EOF, or error.
bool recv_some(int fd, std::string& buffer, std::chrono::milliseconds timeout) {
  pollfd waiter{};
  waiter.fd = fd;
  waiter.events = POLLIN;
  const int ready = ::poll(&waiter, 1, static_cast<int>(timeout.count()));
  if (ready <= 0) return false;
  char chunk[4096];
  const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
  if (n <= 0) return false;
  buffer.append(chunk, static_cast<std::size_t>(n));
  return true;
}

/// Splits a path into '/'-separated segments ("" for the root path).
std::vector<std::string> split_segments(const std::string& path) {
  std::vector<std::string> segments;
  std::size_t pos = 1;  // skip the leading '/'
  while (pos <= path.size()) {
    std::size_t slash = path.find('/', pos);
    if (slash == std::string::npos) slash = path.size();
    segments.push_back(path.substr(pos, slash - pos));
    pos = slash + 1;
  }
  return segments;
}

bool is_template(const std::string& path) {
  return path.find('{') != std::string::npos;
}

/// Client-supplied request ids pass through with hostile characters
/// stripped (they are echoed in headers and logs) and a sane length cap.
std::string sanitize_request_id(const std::string& raw) {
  std::string out;
  out.reserve(std::min<std::size_t>(raw.size(), 64));
  for (const char c : raw) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
                    (c >= 'A' && c <= 'Z') || c == '-' || c == '_' || c == '.' ||
                    c == ':';
    if (ok) out.push_back(c);
    if (out.size() == 64) break;
  }
  return out;
}

/// Process-unique fallback id: startup-timestamped prefix + sequence number.
std::string generate_request_id() {
  static const std::uint64_t epoch = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  static std::atomic<std::uint64_t> sequence{0};
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "req-%llx-%llu",
                static_cast<unsigned long long>(epoch),
                static_cast<unsigned long long>(
                    sequence.fetch_add(1, std::memory_order_relaxed) + 1));
  return buffer;
}

}  // namespace

HttpResponse HttpResponse::text(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body.assign(message.begin(), message.end());
  return response;
}

HttpResponse HttpResponse::html(const std::string& markup) {
  HttpResponse response;
  response.content_type = "text/html; charset=utf-8";
  response.body.assign(markup.begin(), markup.end());
  return response;
}

HttpResponse HttpResponse::json(int status, const std::string& document) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body.assign(document.begin(), document.end());
  return response;
}

HttpResponse HttpResponse::bytes(const std::string& content_type,
                                 std::vector<std::uint8_t> payload) {
  HttpResponse response;
  response.content_type = content_type;
  response.body = std::move(payload);
  return response;
}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::match_path_template(const std::string& pattern, const std::string& path,
                                     std::map<std::string, std::string>& params) {
  if (pattern.empty() || path.empty() || pattern[0] != '/' || path[0] != '/') {
    return false;
  }
  const auto pattern_segments = split_segments(pattern);
  const auto path_segments = split_segments(path);
  if (pattern_segments.size() != path_segments.size()) return false;
  std::map<std::string, std::string> captured;
  for (std::size_t i = 0; i < pattern_segments.size(); ++i) {
    const std::string& ps = pattern_segments[i];
    if (ps.size() >= 2 && ps.front() == '{' && ps.back() == '}') {
      if (path_segments[i].empty()) return false;  // `{id}` never matches ""
      captured[ps.substr(1, ps.size() - 2)] = url_decode(path_segments[i]);
    } else if (ps != path_segments[i]) {
      return false;
    }
  }
  params = std::move(captured);
  return true;
}

void HttpServer::route(const std::string& method, const std::string& path,
                       Handler handler) {
  if (is_template(path)) {
    pattern_routes_.push_back(PatternRoute{method, path, std::move(handler)});
  } else {
    routes_[{method, path}] = std::move(handler);
  }
}

void HttpServer::start(std::uint16_t port) {
  if (running_.load()) throw std::logic_error("HttpServer: already running");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("HttpServer: socket() failed");
  const int opt = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &opt, sizeof(opt));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("HttpServer: bind() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::listen(fd, std::max(options_.accept_backlog, 1)) != 0) {
    ::close(fd);
    throw std::runtime_error("HttpServer: listen() failed");
  }
  workers_ = std::make_unique<ThreadPool>(std::max<std::size_t>(options_.worker_threads, 1));
  listen_fd_.store(fd);
  running_.store(true);
  accept_thread_ = std::thread([this] { serve_loop(); });
}

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  // Shutting down the listening socket unblocks accept().
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Joining the pool drains queued connections and finishes in-flight
  // handlers — no detached threads can outlive the server.
  workers_.reset();
}

void HttpServer::serve_loop() {
  while (running_.load()) {
    const int fd = listen_fd_.load();
    if (fd < 0) break;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (!running_.load()) break;
      continue;
    }
    // Connection-level overload shedding: the kernel backlog absorbs
    // bursts, the pool bounds concurrency, and anything beyond the pending
    // cap is told to come back instead of queueing without limit.
    if (workers_->pending() >= options_.max_pending_connections) {
      HttpResponse busy = HttpResponse::text(503, "server overloaded\n");
      busy.with_header("Retry-After", "1");
      send_response(client, busy);
      ::close(client);
      continue;
    }
    workers_->post([this, client] {
      handle_connection(client);
      ::close(client);
    });
  }
}

const HttpServer::Handler* HttpServer::find_route(HttpRequest& request,
                                                  bool& method_known_for_path) const {
  method_known_for_path = false;
  const auto exact = routes_.find({request.method, request.path});
  if (exact != routes_.end()) return &exact->second;
  for (const auto& route : pattern_routes_) {
    std::map<std::string, std::string> params;
    if (!match_path_template(route.pattern, request.path, params)) continue;
    if (route.method != request.method) {
      method_known_for_path = true;
      continue;
    }
    request.path_params = std::move(params);
    return &route.handler;
  }
  for (const auto& [key, handler] : routes_) {
    if (key.second == request.path) {
      method_known_for_path = true;
      break;
    }
  }
  return nullptr;
}

void HttpServer::handle_connection(int client_fd) {
  // Sequential keep-alive loop: each serve_one() call consumes exactly one
  // request from the connection (pipelined bytes carry over in `buffer`)
  // and reports whether the connection may serve another.
  std::string buffer;
  std::size_t served = 0;
  while (running_.load() && served < options_.max_requests_per_connection) {
    if (!serve_one(client_fd, buffer, served)) break;
    ++served;
  }
}

bool HttpServer::serve_one(int client_fd, std::string& buffer, std::size_t served) {
  // Read until the end of headers. The idle timeout bounds both waiting
  // for a follow-up request on a kept-alive connection and a half-sent
  // request stalling between reads.
  std::size_t header_end = buffer.find("\r\n\r\n");
  while (header_end == std::string::npos) {
    if (!recv_some(client_fd, buffer, options_.keep_alive_timeout)) return false;
    header_end = buffer.find("\r\n\r\n");
    if (buffer.size() > (1u << 20) && header_end == std::string::npos) return false;
  }

  HttpRequest request;
  std::string http_version;
  {
    const std::string head = buffer.substr(0, header_end);
    std::size_t pos = 0;
    std::size_t eol = head.find("\r\n");
    const std::string request_line = head.substr(0, eol == std::string::npos ? head.size() : eol);
    const std::size_t sp1 = request_line.find(' ');
    const std::size_t sp2 = request_line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
    request.method = request_line.substr(0, sp1);
    request.path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    http_version = request_line.substr(sp2 + 1);
    if (const std::size_t qmark = request.path.find('?'); qmark != std::string::npos) {
      request.query = parse_query(request.path.substr(qmark + 1));
      request.path.resize(qmark);
    }

    pos = (eol == std::string::npos) ? head.size() : eol + 2;
    while (pos < head.size()) {
      std::size_t line_end = head.find("\r\n", pos);
      if (line_end == std::string::npos) line_end = head.size();
      const std::string line = head.substr(pos, line_end - pos);
      pos = line_end + 2;
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string value = line.substr(colon + 1);
      while (!value.empty() && value.front() == ' ') value.erase(value.begin());
      request.headers[lower(line.substr(0, colon))] = value;
    }
  }

  // Keep-alive negotiation: HTTP/1.1 defaults to persistent unless the
  // client sent Connection: close; HTTP/1.0 always closes (we do not
  // honor opt-in 1.0 keep-alive). The grant is decided before dispatch so
  // error responses advertise the right semantics too.
  KeepAliveGrant grant;
  {
    std::string connection;
    if (const auto it = request.headers.find("connection"); it != request.headers.end()) {
      connection = lower(it->second);
    }
    grant.keep = options_.keep_alive && http_version == "HTTP/1.1" &&
                 connection != "close" &&
                 served + 1 < options_.max_requests_per_connection;
    grant.timeout = options_.keep_alive_timeout;
    grant.remaining = options_.max_requests_per_connection - served - 1;
  }

  // Request-id propagation: honor a client X-Request-Id (sanitized), mint
  // one otherwise, and echo it on every response from here on so a job can
  // be correlated across client logs, /jobs objects, and trace spans.
  std::string request_id;
  if (const auto it = request.headers.find("x-request-id"); it != request.headers.end()) {
    request_id = sanitize_request_id(it->second);
  }
  if (request_id.empty()) request_id = generate_request_id();
  request.headers["x-request-id"] = request_id;
  const auto respond = [client_fd, &request_id, &grant](HttpResponse response) {
    response.with_header("X-Request-Id", request_id);
    send_response(client_fd, response, grant);
  };

  // Body, capped before a single byte is buffered beyond the cap.
  std::size_t content_length = 0;
  if (auto it = request.headers.find("content-length"); it != request.headers.end()) {
    try {
      content_length = static_cast<std::size_t>(std::stoull(it->second));
    } catch (const std::exception&) {
      grant.keep = false;  // framing is lost without a believable length
      respond(HttpResponse::text(400, "bad Content-Length\n"));
      return false;
    }
  }
  if (content_length > options_.max_body_bytes) {
    grant.keep = false;  // the oversized body is still on the wire
    respond(HttpResponse::text(413, "request body exceeds " +
                                        std::to_string(options_.max_body_bytes) +
                                        " bytes\n"));
    return false;
  }
  std::string body = buffer.substr(header_end + 4);
  while (body.size() < content_length) {
    if (!recv_some(client_fd, body, options_.keep_alive_timeout)) return false;
  }
  // Bytes past the declared body belong to the next pipelined request.
  buffer.assign(body, content_length, std::string::npos);
  body.resize(content_length);
  request.body.assign(body.begin(), body.end());

  // Dispatch.
  HttpResponse response;
  bool method_known_for_path = false;
  const Handler* handler = find_route(request, method_known_for_path);
  if (handler == nullptr) {
    response = method_known_for_path
                   ? HttpResponse::text(405, "method not allowed: " + request.method +
                                                 " " + request.path + "\n")
                   : HttpResponse::text(404, "not found: " + request.path + "\n");
  } else {
    try {
      response = (*handler)(request);
    } catch (const std::exception& e) {
      response = HttpResponse::text(500, std::string("error: ") + e.what() + "\n");
    }
  }
  respond(std::move(response));
  return grant.keep;
}

}  // namespace bwaver
