#include "app/web_service.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "fmindex/dna.hpp"
#include "io/fasta.hpp"
#include "io/fastq.hpp"
#include "mapper/map_service.hpp"

namespace bwaver {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

WebService::WebService(WebServiceOptions options)
    : options_(std::move(options)),
      registry_(options_.store_dir, options_.memory_budget_bytes) {
  server_.route("GET", "/", [this](const HttpRequest&) { return handle_index(); });
  server_.route("GET", "/status",
                [this](const HttpRequest&) { return handle_status(); });
  server_.route("GET", "/references",
                [this](const HttpRequest&) { return handle_references(); });
  server_.route("POST", "/reference",
                [this](const HttpRequest& request) { return handle_reference(request); });
  server_.route("POST", "/map",
                [this](const HttpRequest& request) { return handle_map(request); });
  server_.route("POST", "/evict",
                [this](const HttpRequest& request) { return handle_evict(request); });
}

void WebService::start(std::uint16_t port) { server_.start(port); }

HttpResponse WebService::handle_index() const {
  return HttpResponse::html(
      "<html><head><title>BWaveR</title></head><body>"
      "<h1>BWaveR &mdash; hybrid DNA sequence mapper</h1>"
      "<p>Succinct-data-structure FM-index mapping with an FPGA-modeled "
      "backend, serving multiple persisted references concurrently.</p>"
      "<ol>"
      "<li>POST a FASTA (or FASTA.gz) reference to "
      "<code>/reference?name=X</code></li>"
      "<li>POST a FASTQ (or FASTQ.gz) read set to <code>/map?ref=X</code> and "
      "download the SAM response</li>"
      "</ol>"
      "<p>See <code>/references</code> for the loaded indexes and "
      "<code>/status</code> for registry state.</p>"
      "</body></html>");
}

HttpResponse WebService::handle_status() const {
  const auto entries = registry_.list();
  if (entries.empty()) {
    return HttpResponse::text(200, "state: no reference loaded\n");
  }
  std::size_t resident = 0;
  for (const auto& entry : entries) resident += entry.resident ? 1 : 0;
  std::string out = "state: ready\n";
  out += "references: " + std::to_string(entries.size()) + " (" +
         std::to_string(resident) + " resident)\n";
  out += "resident_bytes: " + std::to_string(registry_.resident_bytes()) + " / " +
         std::to_string(registry_.memory_budget()) + "\n";
  if (!registry_.store_dir().empty()) {
    out += "store_dir: " + registry_.store_dir() + "\n";
  }
  for (const auto& entry : entries) {
    out += "- " + entry.name + ": " + std::to_string(entry.text_length) + " bp, " +
           std::to_string(entry.num_sequences) + " sequence(s), " +
           (entry.resident ? "resident" : "on disk") + "\n";
  }
  return HttpResponse::text(200, out);
}

HttpResponse WebService::handle_references() const {
  std::string json = "[";
  bool first = true;
  for (const auto& entry : registry_.list()) {
    if (!first) json += ",";
    first = false;
    json += "{\"name\":\"" + json_escape(entry.name) + "\"";
    json += ",\"length_bp\":" + std::to_string(entry.text_length);
    json += ",\"sequences\":" + std::to_string(entry.num_sequences);
    json += ",\"resident\":" + std::string(entry.resident ? "true" : "false");
    json += ",\"resident_bytes\":" + std::to_string(entry.resident_bytes);
    json += ",\"archive_bytes\":" + std::to_string(entry.archive_bytes);
    json += "}";
  }
  json += "]\n";
  return HttpResponse::bytes("application/json",
                             std::vector<std::uint8_t>(json.begin(), json.end()));
}

HttpResponse WebService::handle_reference(const HttpRequest& request) {
  if (request.body.empty()) {
    return HttpResponse::text(400, "empty reference upload\n");
  }
  const auto records = parse_fasta(request.body);
  std::string name = request.query_param("name");
  if (name.empty()) name = records.front().name;

  // Builds are CPU-heavy and briefly take the registry write lock at the
  // end; serialize them so concurrent uploads don't thrash the host. Mapping
  // requests keep flowing against already-registered references meanwhile.
  std::lock_guard<std::mutex> build_lock(build_mutex_);
  ReferenceSet reference;
  for (const auto& record : records) {
    reference.add(record.name,
                  dna_encode_string(record.sequence, /*substitute_invalid=*/true));
  }
  const auto sa = build_suffix_array(reference.concatenated());
  Bwt bwt = build_bwt(reference.concatenated(), sa);
  const RrrParams params = options_.pipeline.rrr;
  FmIndex<RrrWaveletOcc> index(
      std::move(bwt), std::move(sa), [params](std::span<const std::uint8_t> symbols) {
        return RrrWaveletOcc(symbols, params);
      });
  const std::size_t length = index.size();
  registry_.add(name, StoredIndex{std::move(reference), std::move(index)});

  std::string out = "reference '" + name + "' indexed (" +
                    std::to_string(records.size()) + " sequence(s), " +
                    std::to_string(length) + " bp)";
  if (!registry_.store_dir().empty()) {
    out += ", persisted to " + registry_.archive_path(name);
  }
  return HttpResponse::text(200, out + "\n");
}

std::string WebService::resolve_ref_name(const HttpRequest& request,
                                         HttpResponse& error) const {
  std::string name = request.query_param("ref");
  if (!name.empty()) {
    if (!registry_.contains(name)) {
      error = HttpResponse::text(404, "unknown reference '" + name + "'\n");
      return "";
    }
    return name;
  }
  const auto entries = registry_.list();
  if (entries.empty()) {
    error = HttpResponse::text(409, "no reference loaded; POST /reference first\n");
    return "";
  }
  if (entries.size() > 1) {
    error = HttpResponse::text(
        409, "multiple references loaded; select one with ?ref=NAME\n");
    return "";
  }
  return entries.front().name;
}

HttpResponse WebService::handle_map(const HttpRequest& request) {
  HttpResponse error;
  const std::string name = resolve_ref_name(request, error);
  if (name.empty()) return error;
  if (request.body.empty()) {
    return HttpResponse::text(400, "empty read upload\n");
  }
  const auto records = parse_fastq(request.body);

  // A refcounted read handle: mapping runs with no registry lock held, so
  // any number of /map requests proceed concurrently, and eviction of this
  // index mid-request cannot pull it out from under us.
  const IndexRegistry::Handle handle = registry_.acquire(name);
  const MappingOutcome outcome =
      map_records_over(handle->index, handle->reference, options_.pipeline, records);
  return HttpResponse::bytes(
      "text/x-sam", std::vector<std::uint8_t>(outcome.sam.begin(), outcome.sam.end()));
}

HttpResponse WebService::handle_evict(const HttpRequest& request) {
  const std::string name = request.query_param("ref");
  if (name.empty()) {
    return HttpResponse::text(400, "select a reference with ?ref=NAME\n");
  }
  if (!registry_.contains(name)) {
    return HttpResponse::text(404, "unknown reference '" + name + "'\n");
  }
  const bool evicted = registry_.evict(name);
  return HttpResponse::text(200, std::string(evicted ? "evicted" : "not resident") +
                                     ": " + name + "\n");
}

}  // namespace bwaver
