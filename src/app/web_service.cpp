#include "app/web_service.hpp"

#include <cstdio>

#include "io/fasta.hpp"
#include "io/fastq.hpp"

namespace bwaver {

WebService::WebService(PipelineConfig config) : config_(config) {
  server_.route("GET", "/", [this](const HttpRequest&) { return handle_index(); });
  server_.route("GET", "/status",
                [this](const HttpRequest&) { return handle_status(); });
  server_.route("POST", "/reference",
                [this](const HttpRequest& request) { return handle_reference(request); });
  server_.route("POST", "/map",
                [this](const HttpRequest& request) { return handle_map(request); });
}

void WebService::start(std::uint16_t port) { server_.start(port); }

HttpResponse WebService::handle_index() const {
  return HttpResponse::html(
      "<html><head><title>BWaveR</title></head><body>"
      "<h1>BWaveR &mdash; hybrid DNA sequence mapper</h1>"
      "<p>Succinct-data-structure FM-index mapping with an FPGA-modeled "
      "backend.</p>"
      "<ol>"
      "<li>POST a FASTA (or FASTA.gz) reference to <code>/reference</code></li>"
      "<li>POST a FASTQ (or FASTQ.gz) read set to <code>/map</code> and "
      "download the SAM response</li>"
      "</ol>"
      "<p>See <code>/status</code> for pipeline state.</p>"
      "</body></html>");
}

HttpResponse WebService::handle_status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!pipeline_ || !pipeline_->ready()) {
    return HttpResponse::text(200, "state: no reference loaded\n");
  }
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "state: ready\nreference: %s\nlength: %zu bp\n"
                "bwt_sa_seconds: %.3f\nencode_seconds: %.3f\n",
                pipeline_->reference_name().c_str(), pipeline_->index().size(),
                pipeline_->timings().bwt_sa_seconds,
                pipeline_->timings().encode_seconds);
  return HttpResponse::text(200, buffer);
}

HttpResponse WebService::handle_reference(const HttpRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (request.body.empty()) {
    return HttpResponse::text(400, "empty reference upload\n");
  }
  const auto records = parse_fasta(request.body);
  auto pipeline = std::make_unique<Pipeline>(config_);
  pipeline->build_from_records(records);
  pipeline_ = std::move(pipeline);
  return HttpResponse::text(
      200, "reference '" + pipeline_->reference_name() + "' indexed (" +
               std::to_string(records.size()) + " sequence(s), " +
               std::to_string(pipeline_->index().size()) + " bp)\n");
}

HttpResponse WebService::handle_map(const HttpRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!pipeline_ || !pipeline_->ready()) {
    return HttpResponse::text(409, "no reference loaded; POST /reference first\n");
  }
  if (request.body.empty()) {
    return HttpResponse::text(400, "empty read upload\n");
  }
  const auto records = parse_fastq(request.body);
  const MappingOutcome outcome = pipeline_->map_records(records);
  HttpResponse response = HttpResponse::bytes(
      "text/x-sam", std::vector<std::uint8_t>(outcome.sam.begin(), outcome.sam.end()));
  return response;
}

}  // namespace bwaver
