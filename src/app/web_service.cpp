#include "app/web_service.hpp"

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <utility>

#include "fleet/map_transport.hpp"
#include "fmindex/dna.hpp"
#include "io/fasta.hpp"
#include "io/fastq.hpp"
#include "kernels/registry.hpp"
#include "mapper/map_service.hpp"

namespace bwaver {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string format_ms(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  return buffer;
}

std::string job_record_json(const JobRecord& record) {
  std::string json = "{\"id\":" + std::to_string(record.id);
  json += ",\"state\":\"" + std::string(to_string(record.state)) + "\"";
  json += ",\"request_id\":\"" + json_escape(record.request_id) + "\"";
  json += ",\"ref\":\"" + json_escape(record.label) + "\"";
  json += ",\"priority\":\"" + std::string(to_string(record.priority)) + "\"";
  json += ",\"queue_wait_ms\":" + format_ms(record.queue_wait_ms);
  json += ",\"run_ms\":" + format_ms(record.run_ms);
  if (!record.error.empty()) json += ",\"error\":\"" + json_escape(record.error) + "\"";
  if (!record.cancel_reason.empty()) {
    json += ",\"cancel_reason\":\"" + json_escape(record.cancel_reason) + "\"";
  }
  if (record.has_result) {
    json += ",\"result\":\"/jobs/" + std::to_string(record.id) + "/result\"";
  }
  json += "}";
  return json;
}

/// 503 with the client hint required for admission control.
HttpResponse queue_full_response() {
  HttpResponse response =
      HttpResponse::text(503, "mapping queue full; retry later\n");
  response.with_header("Retry-After", "1");
  return response;
}

bool parse_job_id(const HttpRequest& request, std::uint64_t& id) {
  const std::string raw = request.path_param("id");
  if (raw.empty() || raw.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  try {
    id = std::stoull(raw);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

JobPriority parse_priority(const std::string& name, JobPriority fallback) {
  if (name == "high") return JobPriority::kHigh;
  if (name == "normal") return JobPriority::kNormal;
  if (name == "low") return JobPriority::kLow;
  return fallback;
}

}  // namespace

WebService::WebService(WebServiceOptions options)
    : options_(std::move(options)),
      registry_(options_.store_dir, options_.memory_budget_bytes,
                options_.load_mode),
      metrics_(options_.jobs.metrics ? options_.jobs.metrics
                                     : std::make_shared<obs::MetricsRegistry>()),
      traces_(options_.jobs.traces
                  ? options_.jobs.traces
                  : std::make_shared<obs::TraceCollector>(options_.trace)),
      jobs_([this] {
        JobManagerConfig config = options_.jobs;
        config.metrics = metrics_;
        config.traces = traces_;
        return config;
      }()),
      server_(options_.http) {
  server_.route("GET", "/", [this](const HttpRequest&) { return handle_index(); });
  server_.route("GET", "/status",
                [this](const HttpRequest&) { return handle_status(); });
  server_.route("GET", "/references",
                [this](const HttpRequest&) { return handle_references(); });
  server_.route("POST", "/reference",
                [this](const HttpRequest& request) { return handle_reference(request); });
  server_.route("POST", "/admin/rollover",
                [this](const HttpRequest& request) { return handle_rollover(request); });
  // Health probes answer from immutable/atomic state only — no job-queue,
  // registry, or metrics locks — so a wedged worker pool or a long build
  // cannot make the router think the process is gone.
  server_.route("GET", "/healthz",
                [](const HttpRequest&) { return HttpResponse::text(200, "ok\n"); });
  server_.route("GET", "/readyz", [this](const HttpRequest&) {
    return server_.running() ? HttpResponse::text(200, "ok\n")
                             : HttpResponse::text(503, "draining\n");
  });
  server_.route("POST", "/map",
                [this](const HttpRequest& request) { return handle_map(request); });
  server_.route("POST", "/evict",
                [this](const HttpRequest& request) { return handle_evict(request); });
  server_.route("POST", "/jobs",
                [this](const HttpRequest& request) { return handle_job_submit(request); });
  server_.route("GET", "/jobs", [this](const HttpRequest&) { return handle_job_list(); });
  server_.route("GET", "/jobs/{id}",
                [this](const HttpRequest& request) { return handle_job_status(request); });
  server_.route("GET", "/jobs/{id}/result",
                [this](const HttpRequest& request) { return handle_job_result(request); });
  server_.route("DELETE", "/jobs/{id}",
                [this](const HttpRequest& request) { return handle_job_cancel(request); });
  server_.route("GET", "/stats", [this](const HttpRequest&) { return handle_stats(); });
  server_.route("GET", "/metrics",
                [this](const HttpRequest&) { return handle_metrics(); });
  server_.route("GET", "/trace/recent",
                [this](const HttpRequest& request) { return handle_trace_recent(request); });
}

void WebService::start(std::uint16_t port) { server_.start(port); }

HttpResponse WebService::handle_index() const {
  return HttpResponse::html(
      "<html><head><title>BWaveR</title></head><body>"
      "<h1>BWaveR &mdash; hybrid DNA sequence mapper</h1>"
      "<p>Succinct-data-structure FM-index mapping with an FPGA-modeled "
      "backend, serving multiple persisted references through an "
      "asynchronous bounded job queue.</p>"
      "<ol>"
      "<li>POST a FASTA (or FASTA.gz) reference to "
      "<code>/reference?name=X</code></li>"
      "<li>POST a FASTQ (or FASTQ.gz) read set to <code>/jobs?ref=X</code>, "
      "poll <code>/jobs/{id}</code>, then download "
      "<code>/jobs/{id}/result</code> (or POST <code>/map?ref=X</code> to "
      "wait inline)</li>"
      "</ol>"
      "<p>See <code>/references</code> for the loaded indexes, "
      "<code>/status</code> for registry state, and <code>/stats</code> for "
      "serving telemetry.</p>"
      "</body></html>");
}

HttpResponse WebService::handle_status() const {
  const auto entries = registry_.list();
  if (entries.empty()) {
    return HttpResponse::text(200, "state: no reference loaded\n");
  }
  std::size_t resident = 0;
  for (const auto& entry : entries) resident += entry.resident ? 1 : 0;
  std::string out = "state: ready\n";
  out += "references: " + std::to_string(entries.size()) + " (" +
         std::to_string(resident) + " resident)\n";
  out += "resident_bytes: " + std::to_string(registry_.resident_bytes()) + " / " +
         std::to_string(registry_.memory_budget()) + "\n";
  out += "heap_bytes: " + std::to_string(registry_.heap_bytes()) +
         ", mapped_bytes: " + std::to_string(registry_.mapped_bytes()) + "\n";
  out += "load_mode: " + std::string(load_mode_name(registry_.load_mode())) + "\n";
  if (!registry_.store_dir().empty()) {
    out += "store_dir: " + registry_.store_dir() + "\n";
  }
  out += "jobs: " + std::to_string(jobs_.queue_depth()) + " queued / " +
         std::to_string(jobs_.queue_capacity()) + " capacity, " +
         std::to_string(jobs_.workers()) + " worker(s)\n";
  for (const auto& entry : entries) {
    out += "- " + entry.name + ": " + std::to_string(entry.text_length) + " bp, " +
           std::to_string(entry.num_sequences) + " sequence(s), " +
           (entry.resident ? "resident" : "on disk") + "\n";
  }
  return HttpResponse::text(200, out);
}

HttpResponse WebService::handle_references() const {
  std::string json = "[";
  bool first = true;
  for (const auto& entry : registry_.list()) {
    if (!first) json += ",";
    first = false;
    json += "{\"name\":\"" + json_escape(entry.name) + "\"";
    json += ",\"length_bp\":" + std::to_string(entry.text_length);
    json += ",\"sequences\":" + std::to_string(entry.num_sequences);
    json += ",\"resident\":" + std::string(entry.resident ? "true" : "false");
    json += ",\"resident_bytes\":" + std::to_string(entry.resident_bytes);
    json += ",\"heap_bytes\":" + std::to_string(entry.heap_bytes);
    json += ",\"mapped_bytes\":" + std::to_string(entry.mapped_bytes);
    json += ",\"archive_bytes\":" + std::to_string(entry.archive_bytes);
    json += ",\"generation\":" + std::to_string(entry.generation);
    json += "}";
  }
  json += "]\n";
  return HttpResponse::json(200, json);
}

HttpResponse WebService::handle_reference(const HttpRequest& request) {
  if (request.body.empty()) {
    return HttpResponse::text(400, "empty reference upload\n");
  }
  const auto records = parse_fasta(request.body);
  std::string name = request.query_param("name");
  if (name.empty()) name = records.front().name;

  // Builds are CPU-heavy and briefly take the registry write lock at the
  // end; serialize them so concurrent uploads don't thrash the host. Mapping
  // requests keep flowing against already-registered references meanwhile.
  std::lock_guard<std::mutex> build_lock(build_mutex_);
  StoredIndex stored = build_stored_index(records);
  const std::size_t length = stored.index.size();
  registry_.add(name, std::move(stored));

  std::string out = "reference '" + name + "' indexed (" +
                    std::to_string(records.size()) + " sequence(s), " +
                    std::to_string(length) + " bp)";
  if (!registry_.store_dir().empty()) {
    out += ", persisted to " + registry_.archive_path(name);
  }
  return HttpResponse::text(200, out + "\n");
}

StoredIndex WebService::build_stored_index(const std::vector<FastaRecord>& records) const {
  ReferenceSet reference;
  for (const auto& record : records) {
    reference.add(record.name,
                  dna_encode_string(record.sequence, /*substitute_invalid=*/true));
  }
  const auto sa = build_suffix_array(reference.concatenated());
  Bwt bwt = build_bwt(reference.concatenated(), sa);
  const RrrParams params = options_.pipeline.rrr;
  FmIndex<RrrWaveletOcc> index(
      std::move(bwt), std::move(sa), [params](std::span<const std::uint8_t> symbols) {
        return RrrWaveletOcc(symbols, params);
      });
  return StoredIndex{std::move(reference), std::move(index), nullptr, nullptr,
                     LoadMode::kCopy};
}

HttpResponse WebService::handle_rollover(const HttpRequest& request) {
  const std::string name = request.query_param("ref");
  if (name.empty()) {
    return HttpResponse::text(400, "select a reference with ?ref=NAME\n");
  }
  if (!registry_.contains(name)) {
    return HttpResponse::text(404, "unknown reference '" + name +
                                       "'; use POST /reference for first registration\n");
  }
  if (request.body.empty()) {
    return HttpResponse::text(400, "empty reference upload\n");
  }
  std::vector<FastaRecord> records;
  try {
    records = parse_fasta(request.body);
  } catch (const std::exception& e) {
    return HttpResponse::text(400, std::string("bad FASTA: ") + e.what() + "\n");
  }

  // The rebuild runs outside every registry lock (mapping continues on the
  // current generation); only the final pointer flip inside rollover()
  // takes the write lock.
  std::lock_guard<std::mutex> build_lock(build_mutex_);
  try {
    registry_.rollover(name, build_stored_index(records));
  } catch (const std::exception& e) {
    return HttpResponse::text(500, std::string("rollover failed: ") + e.what() + "\n");
  }
  const std::string json = "{\"ref\":\"" + json_escape(name) +
                           "\",\"generation\":" + std::to_string(registry_.generation(name)) +
                           "}\n";
  return HttpResponse::json(200, json);
}

std::string WebService::resolve_ref_name(const HttpRequest& request,
                                         HttpResponse& error) const {
  std::string name = request.query_param("ref");
  if (!name.empty()) {
    if (!registry_.contains(name)) {
      error = HttpResponse::text(404, "unknown reference '" + name + "'\n");
      return "";
    }
    return name;
  }
  const auto entries = registry_.list();
  if (entries.empty()) {
    error = HttpResponse::text(409, "no reference loaded; POST /reference first\n");
    return "";
  }
  if (entries.size() > 1) {
    error = HttpResponse::text(
        409, "multiple references loaded; select one with ?ref=NAME\n");
    return "";
  }
  return entries.front().name;
}

HttpResponse WebService::submit_map_job(const HttpRequest& request,
                                        JobPriority priority, std::uint64_t& job_id) {
  HttpResponse error;
  const std::string name = resolve_ref_name(request, error);
  if (name.empty()) return error;
  if (request.body.empty()) {
    return HttpResponse::text(400, "empty read upload\n");
  }
  // Parse on the connection thread (cheap, bounded by the body cap) so a
  // malformed FASTQ fails fast with 400 instead of becoming a failed job.
  std::shared_ptr<const std::vector<FastqRecord>> records;
  try {
    records = std::make_shared<const std::vector<FastqRecord>>(parse_fastq(request.body));
  } catch (const std::exception& e) {
    return HttpResponse::text(400, std::string("bad FASTQ: ") + e.what() + "\n");
  }

  std::optional<std::chrono::milliseconds> timeout;
  const std::string timeout_raw = request.query_param("timeout-ms");
  if (!timeout_raw.empty()) {
    try {
      timeout = std::chrono::milliseconds(std::stoll(timeout_raw));
    } catch (const std::exception&) {
      return HttpResponse::text(400, "bad timeout-ms\n");
    }
  }

  // ?engine= overrides the service's configured engine for this job only
  // (the router forwards the client's choice through the fleet this way).
  PipelineConfig config = options_.pipeline;
  const std::string engine_raw = request.query_param("engine");
  if (!engine_raw.empty()) {
    const auto engine = kernels::parse_engine_name(engine_raw);
    if (!engine) {
      std::string known;
      for (const auto& spec : kernels::engines()) {
        if (!known.empty()) known += "|";
        known += spec.name;
      }
      return HttpResponse::text(400, "unknown engine '" + engine_raw + "' (" +
                                         known + ")\n");
    }
    config.engine = *engine;
  }

  // ?search_mode= likewise overrides the backward-search scheduling for
  // this job only (per-read, or the batched sweep scheduler).
  const std::string mode_raw = request.query_param("search_mode");
  if (!mode_raw.empty()) {
    const auto mode = parse_search_mode(mode_raw);
    if (!mode) {
      return HttpResponse::text(400, "unknown search_mode '" + mode_raw + "' (" +
                                         search_mode_choices() + ")\n");
    }
    config.search_mode = *mode;
  }

  // The job closure is shared with the fleet transports (the worker
  // acquires the registry handle at run time, so an index evicted — or
  // rolled over — between submit and pickup is picked up fresh).
  try {
    job_id = jobs_.submit(name,
                          fleet::make_map_job(registry_, config, jobs_.stats(),
                                              name, records),
                          priority, timeout, request.request_id());
  } catch (const QueueFull&) {
    return queue_full_response();
  }
  jobs_.stats().record_reference(name);
  return HttpResponse{};  // status 200 marks "accepted" to the callers below
}

HttpResponse WebService::handle_map(const HttpRequest& request) {
  jobs_.stats().sync_requests.inc();
  // The synchronous path rides the same bounded queue as /jobs — one
  // admission-control point, one set of metrics — at high priority so
  // inline callers stay snappy under a backlog of batch jobs.
  std::uint64_t id = 0;
  HttpResponse submitted = submit_map_job(
      request, parse_priority(request.query_param("priority"), JobPriority::kHigh), id);
  if (submitted.status != 200 || id == 0) return submitted;

  const JobRecord record = jobs_.wait(id);
  switch (record.state) {
    case JobState::kDone: {
      auto sam = jobs_.result(id);
      return HttpResponse::bytes(
          "text/x-sam", std::vector<std::uint8_t>(sam->begin(), sam->end()));
    }
    case JobState::kTimedOut:
      return HttpResponse::text(503, "mapping job timed out\n");
    case JobState::kCancelled:
      return HttpResponse::text(410, "mapping job cancelled\n");
    default:
      return HttpResponse::text(500, "mapping failed: " + record.error + "\n");
  }
}

HttpResponse WebService::handle_job_submit(const HttpRequest& request) {
  jobs_.stats().async_requests.inc();
  std::uint64_t id = 0;
  HttpResponse submitted = submit_map_job(
      request, parse_priority(request.query_param("priority"), JobPriority::kNormal), id);
  if (submitted.status != 200 || id == 0) return submitted;
  const std::string json = "{\"id\":" + std::to_string(id) +
                           ",\"state\":\"queued\",\"poll\":\"/jobs/" +
                           std::to_string(id) + "\"}\n";
  return HttpResponse::json(202, json);
}

HttpResponse WebService::handle_job_list() const {
  std::string json = "[";
  bool first = true;
  for (const auto& record : jobs_.list()) {
    if (!first) json += ",";
    first = false;
    json += job_record_json(record);
  }
  json += "]\n";
  return HttpResponse::json(200, json);
}

HttpResponse WebService::handle_job_status(const HttpRequest& request) const {
  std::uint64_t id = 0;
  if (!parse_job_id(request, id)) {
    return HttpResponse::text(400, "bad job id\n");
  }
  const auto record = jobs_.status(id);
  if (!record) return HttpResponse::text(404, "unknown job " + std::to_string(id) + "\n");
  return HttpResponse::json(200, job_record_json(*record) + "\n");
}

HttpResponse WebService::handle_job_result(const HttpRequest& request) const {
  std::uint64_t id = 0;
  if (!parse_job_id(request, id)) {
    return HttpResponse::text(400, "bad job id\n");
  }
  const auto record = jobs_.status(id);
  if (!record) return HttpResponse::text(404, "unknown job " + std::to_string(id) + "\n");
  switch (record->state) {
    case JobState::kDone: {
      const auto sam = jobs_.result(id);
      if (!sam) return HttpResponse::text(404, "result no longer retained\n");
      return HttpResponse::bytes(
          "text/x-sam", std::vector<std::uint8_t>(sam->begin(), sam->end()));
    }
    case JobState::kQueued:
    case JobState::kRunning:
      return HttpResponse::text(
          409, "job " + std::to_string(id) + " is " + to_string(record->state) + "\n");
    case JobState::kFailed:
      return HttpResponse::text(500, "job failed: " + record->error + "\n");
    case JobState::kCancelled:
      return HttpResponse::text(410, "job cancelled\n");
    case JobState::kTimedOut:
      return HttpResponse::text(410, "job timed out\n");
  }
  return HttpResponse::text(500, "unreachable\n");
}

HttpResponse WebService::handle_job_cancel(const HttpRequest& request) {
  std::uint64_t id = 0;
  if (!parse_job_id(request, id)) {
    return HttpResponse::text(400, "bad job id\n");
  }
  const auto record = jobs_.status(id);
  if (!record) return HttpResponse::text(404, "unknown job " + std::to_string(id) + "\n");
  if (!jobs_.cancel(id, request.query_param("reason", "client"))) {
    return HttpResponse::text(
        409, "job " + std::to_string(id) + " already " + to_string(record->state) + "\n");
  }
  return HttpResponse::text(202, "cancellation requested for job " +
                                     std::to_string(id) + "\n");
}

HttpResponse WebService::handle_stats() const {
  RegistryTelemetry registry;
  registry.loads_mmap = registry_.loads_mmap();
  registry.loads_copy = registry_.loads_copy();
  registry.heap_bytes = registry_.heap_bytes();
  registry.mapped_bytes = registry_.mapped_bytes();
  const auto& spec = kernels::engine_spec(options_.pipeline.engine);
  return HttpResponse::json(
      200, jobs_.stats().to_json(jobs_.queue_depth(), jobs_.queue_capacity(),
                                 jobs_.workers(), jobs_.retained(), &registry,
                                 spec.name,
                                 kernels::engine_kernel_name(spec.engine)) +
               "\n");
}

HttpResponse WebService::handle_metrics() {
  // Gauges and registry-owned counters are refreshed from their live
  // sources at scrape time; the mutex only serializes the refresh-delta
  // logic against concurrent scrapes (recording paths never touch it).
  std::lock_guard<std::mutex> lock(scrape_mutex_);
  metrics_
      ->gauge("bwaver_queue_depth", "Mapping jobs waiting in the bounded queue")
      .set(static_cast<double>(jobs_.queue_depth()));
  metrics_->gauge("bwaver_queue_capacity", "Bounded queue capacity")
      .set(static_cast<double>(jobs_.queue_capacity()));
  metrics_->gauge("bwaver_job_workers", "Job worker threads")
      .set(static_cast<double>(jobs_.workers()));
  metrics_->gauge("bwaver_jobs_retained", "Terminal jobs retained for polling")
      .set(static_cast<double>(jobs_.retained()));
  metrics_->gauge("bwaver_uptime_seconds", "Seconds since service start")
      .set(jobs_.stats().uptime_seconds());
  metrics_
      ->gauge("bwaver_registry_heap_bytes",
              "Private heap bytes of resident reference indexes")
      .set(static_cast<double>(registry_.heap_bytes()));
  metrics_
      ->gauge("bwaver_registry_mapped_bytes",
              "File-backed (mmap) bytes of resident reference indexes")
      .set(static_cast<double>(registry_.mapped_bytes()));
  metrics_
      ->gauge("bwaver_registry_resident_bytes",
              "Total resident bytes of reference indexes (heap + mapped)")
      .set(static_cast<double>(registry_.resident_bytes()));
  metrics_
      ->gauge("bwaver_registry_memory_budget_bytes",
              "Configured registry memory budget")
      .set(static_cast<double>(registry_.memory_budget()));
  metrics_
      ->gauge("bwaver_traces_completed", "Traces completed since start")
      .set(static_cast<double>(traces_->completed()));
  // Monotonic sources owned by IndexRegistry: advance the exported counter
  // by the delta since the last scrape (guarded by scrape_mutex_).
  const auto sync_counter = [this](const char* name, const char* help,
                                   const obs::Labels& labels, std::uint64_t current) {
    obs::Counter& c = metrics_->counter(name, help, labels);
    const std::uint64_t seen = c.value();
    if (current > seen) c.inc(current - seen);
  };
  sync_counter("bwaver_registry_loads_total", "Archive loads served, by path",
               {{"mode", "mmap"}}, registry_.loads_mmap());
  sync_counter("bwaver_registry_loads_total", "Archive loads served, by path",
               {{"mode", "copy"}}, registry_.loads_copy());
  sync_counter("bwaver_registry_evictions_total",
               "Resident index copies dropped, by cause", {{"cause", "explicit"}},
               registry_.evictions_explicit());
  sync_counter("bwaver_registry_evictions_total",
               "Resident index copies dropped, by cause", {{"cause", "budget"}},
               registry_.evictions_budget());

  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  const std::string text = metrics_->render_prometheus();
  response.body.assign(text.begin(), text.end());
  return response;
}

HttpResponse WebService::handle_trace_recent(const HttpRequest& request) const {
  if (request.query_param("chrome") == "1") {
    // One flat Chrome trace_event array over the retained traces (each
    // event's args carry its trace_id, so chrome://tracing keeps them
    // distinguishable).
    const auto traces = traces_->recent();
    std::string events = "[";
    bool first = true;
    for (const auto& trace : traces) {
      std::string one = trace->chrome_json();
      // Strip the per-trace [ ] and splice.
      if (one.size() <= 2) continue;
      if (!first) events += ",";
      first = false;
      events.append(one, 1, one.size() - 2);
    }
    events += "]\n";
    return HttpResponse::json(200, events);
  }
  std::string json = "{\"enabled\":";
  json += traces_->config().enabled ? "true" : "false";
  json += ",\"completed\":" + std::to_string(traces_->completed());
  json += ",\"retained\":" + std::to_string(traces_->retained());
  json += ",\"slow_threshold_ms\":" + format_ms(traces_->config().slow_threshold_ms);
  json += ",\"traces\":" + traces_->recent_json() + "}\n";
  return HttpResponse::json(200, json);
}

HttpResponse WebService::handle_evict(const HttpRequest& request) {
  const std::string name = request.query_param("ref");
  if (name.empty()) {
    return HttpResponse::text(400, "select a reference with ?ref=NAME\n");
  }
  if (!registry_.contains(name)) {
    return HttpResponse::text(404, "unknown reference '" + name + "'\n");
  }
  const bool evicted = registry_.evict(name);
  return HttpResponse::text(200, std::string(evicted ? "evicted" : "not resident") +
                                     ": " + name + "\n");
}

}  // namespace bwaver
