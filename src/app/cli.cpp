#include "app/cli.hpp"

namespace bwaver {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      const std::string name = arg.substr(2);
      if (const std::size_t eq = name.find('='); eq != std::string::npos) {
        flags_[name.substr(0, eq)].push_back(name.substr(eq + 1));  // --flag=value
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        flags_[name].push_back(argv[++i]);
      } else {
        flags_[name].push_back("");  // boolean flag
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

std::string ArgParser::get(const std::string& flag, const std::string& fallback) const {
  auto it = flags_.find(flag);
  return it == flags_.end() ? fallback : it->second.back();
}

std::int64_t ArgParser::get_int(const std::string& flag, std::int64_t fallback) const {
  auto it = flags_.find(flag);
  if (it == flags_.end() || it->second.back().empty()) return fallback;
  return std::stoll(it->second.back());
}

double ArgParser::get_double(const std::string& flag, double fallback) const {
  auto it = flags_.find(flag);
  if (it == flags_.end() || it->second.back().empty()) return fallback;
  return std::stod(it->second.back());
}

std::vector<std::string> ArgParser::get_list(const std::string& flag) const {
  auto it = flags_.find(flag);
  return it == flags_.end() ? std::vector<std::string>{} : it->second;
}

}  // namespace bwaver
