// Minimal HTTP/1.1 server over POSIX sockets — the C++ substitute for the
// paper's Flask web server. One background accept thread, connections
// handled sequentially, Content-Length bodies, connection-close semantics.
// Sufficient for the upload/index/map/download workflow and for tests to
// exercise end-to-end over loopback.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace bwaver {

struct HttpRequest {
  std::string method;
  std::string path;
  std::map<std::string, std::string> headers;  ///< lower-cased names
  std::vector<std::uint8_t> body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::vector<std::uint8_t> body;

  static HttpResponse text(int status, const std::string& message);
  static HttpResponse html(const std::string& markup);
  static HttpResponse bytes(const std::string& content_type,
                            std::vector<std::uint8_t> payload);
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for exact (method, path) pairs.
  void route(const std::string& method, const std::string& path, Handler handler);

  /// Binds to 127.0.0.1:`port` (0 = ephemeral) and starts serving on a
  /// background thread. Throws on bind failure.
  void start(std::uint16_t port = 0);

  void stop();

  bool running() const noexcept { return running_.load(); }
  std::uint16_t port() const noexcept { return port_; }

 private:
  void serve_loop();
  void handle_connection(int client_fd);

  std::map<std::pair<std::string, std::string>, Handler> routes_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace bwaver
