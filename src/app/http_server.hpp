// Minimal HTTP/1.1 server over POSIX sockets — the C++ substitute for the
// paper's Flask web server. One background accept thread, each connection
// handled on its own worker thread (so long mapping requests don't block
// other clients), Content-Length bodies, connection-close semantics.
// Sufficient for the upload/index/map/download workflow and for tests to
// exercise end-to-end over loopback.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace bwaver {

struct HttpRequest {
  std::string method;
  std::string path;                            ///< without the query string
  std::map<std::string, std::string> query;    ///< decoded ?key=value params
  std::map<std::string, std::string> headers;  ///< lower-cased names
  std::vector<std::uint8_t> body;

  /// Query parameter lookup with a fallback.
  std::string query_param(const std::string& key, const std::string& fallback = "") const {
    const auto it = query.find(key);
    return it == query.end() ? fallback : it->second;
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::vector<std::uint8_t> body;

  static HttpResponse text(int status, const std::string& message);
  static HttpResponse html(const std::string& markup);
  static HttpResponse bytes(const std::string& content_type,
                            std::vector<std::uint8_t> payload);
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for exact (method, path) pairs.
  void route(const std::string& method, const std::string& path, Handler handler);

  /// Binds to 127.0.0.1:`port` (0 = ephemeral) and starts serving on a
  /// background thread. Throws on bind failure.
  void start(std::uint16_t port = 0);

  void stop();

  bool running() const noexcept { return running_.load(); }
  std::uint16_t port() const noexcept { return port_; }

 private:
  void serve_loop();
  void handle_connection(int client_fd);

  std::map<std::pair<std::string, std::string>, Handler> routes_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  // Detached per-connection workers; stop() waits for the count to drain.
  std::mutex workers_mutex_;
  std::condition_variable workers_cv_;
  std::size_t active_workers_ = 0;
};

}  // namespace bwaver
