// Minimal HTTP/1.1 server over POSIX sockets — the C++ substitute for the
// paper's Flask web server, hardened for serving: one background accept
// thread feeding a *bounded* connection worker pool (no thread-per-
// connection fork bombs), a configurable kernel accept backlog and
// in-process pending cap (overload answers 503 immediately), a maximum
// request body size (413), Content-Length bodies, keep-alive connection
// reuse (idle timeout + max-requests-per-connection cap, HTTP/1.1
// semantics; `Connection: close` honored), and path templates
// (`/jobs/{id}`) alongside exact routes. stop() joins — never detaches —
// so shutdown cannot race in-flight handlers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/thread_pool.hpp"

namespace bwaver {

struct HttpRequest {
  std::string method;
  std::string path;                            ///< without the query string
  std::map<std::string, std::string> query;    ///< decoded ?key=value params
  std::map<std::string, std::string> headers;  ///< lower-cased names
  std::map<std::string, std::string> path_params;  ///< `{name}` captures
  std::vector<std::uint8_t> body;

  /// Query parameter lookup with a fallback.
  std::string query_param(const std::string& key, const std::string& fallback = "") const {
    const auto it = query.find(key);
    return it == query.end() ? fallback : it->second;
  }

  /// Capture from a `{name}` route segment ("" when absent).
  std::string path_param(const std::string& key) const {
    const auto it = path_params.find(key);
    return it == path_params.end() ? "" : it->second;
  }

  /// The request's correlation id. The server guarantees this is non-empty
  /// by the time a handler runs: a sanitized client X-Request-Id, or a
  /// generated one (echoed back in the X-Request-Id response header).
  std::string request_id() const {
    const auto it = headers.find("x-request-id");
    return it == headers.end() ? "" : it->second;
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  /// Extra response headers (e.g. Retry-After on 503).
  std::vector<std::pair<std::string, std::string>> headers;
  std::vector<std::uint8_t> body;

  static HttpResponse text(int status, const std::string& message);
  static HttpResponse html(const std::string& markup);
  static HttpResponse json(int status, const std::string& document);
  static HttpResponse bytes(const std::string& content_type,
                            std::vector<std::uint8_t> payload);

  HttpResponse& with_header(std::string name, std::string value) {
    headers.emplace_back(std::move(name), std::move(value));
    return *this;
  }
};

struct HttpServerOptions {
  std::size_t worker_threads = 8;  ///< connection handlers (bounded pool)
  int accept_backlog = 64;         ///< listen(2) backlog
  /// Accepted connections waiting for a free worker beyond this are
  /// answered 503 immediately instead of queueing unboundedly.
  std::size_t max_pending_connections = 64;
  std::size_t max_body_bytes = std::size_t{64} << 20;  ///< 413 beyond this
  /// HTTP/1.1 keep-alive: serve multiple sequential requests per
  /// connection (a router->replica hop then costs one TCP connect, not
  /// one per request). `Connection: close` and HTTP/1.0 still close.
  bool keep_alive = true;
  /// Idle time waiting for the next request before the server closes a
  /// kept-alive connection. Also bounds how long a half-sent request may
  /// stall between reads.
  std::chrono::milliseconds keep_alive_timeout{5000};
  /// Requests served on one connection before the server closes it
  /// (bounds per-connection resource pinning; advertised via Keep-Alive).
  std::size_t max_requests_per_connection = 1000;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  explicit HttpServer(HttpServerOptions options) : options_(options) {}
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler. `path` is either exact ("/stats") or a template
  /// with `{name}` segments ("/jobs/{id}/result") whose captures land in
  /// HttpRequest::path_params. Exact routes win over templates; templates
  /// match in registration order.
  void route(const std::string& method, const std::string& path, Handler handler);

  /// Binds to 127.0.0.1:`port` (0 = ephemeral) and starts serving on a
  /// background thread. Throws on bind failure.
  void start(std::uint16_t port = 0);

  /// Stops accepting, drains and joins every in-flight handler.
  void stop();

  bool running() const noexcept { return running_.load(); }
  std::uint16_t port() const noexcept { return port_; }
  const HttpServerOptions& options() const noexcept { return options_; }

  /// Matches `path` against a `{name}`-template. On success fills `params`
  /// with the captures and returns true. Exposed for unit tests.
  static bool match_path_template(const std::string& pattern, const std::string& path,
                                  std::map<std::string, std::string>& params);

 private:
  struct PatternRoute {
    std::string method;
    std::string pattern;
    Handler handler;
  };

  void serve_loop();
  void handle_connection(int client_fd);
  /// Serves one request from `buffer` + the socket. Returns false when the
  /// connection must close (error, EOF, idle timeout, or a close-semantics
  /// request). Consumed bytes are erased from `buffer`; pipelined bytes
  /// for the next request remain.
  bool serve_one(int client_fd, std::string& buffer, std::size_t served);
  const Handler* find_route(HttpRequest& request, bool& method_known_for_path) const;

  HttpServerOptions options_{};
  std::map<std::pair<std::string, std::string>, Handler> routes_;
  std::vector<PatternRoute> pattern_routes_;
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> workers_;
  std::atomic<bool> running_{false};
  // Written by start()/stop(), read by the accept loop: must be atomic.
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
};

}  // namespace bwaver
