// Asynchronous job engine: a fixed worker pool (util/thread_pool) draining
// the bounded priority JobQueue, with a per-job state machine
//
//     queued -> running -> done | failed
//        \         \-----> cancelled | timed_out
//         \------> cancelled | timed_out          (never picked up)
//
// Jobs are opaque callables returning a payload string (the web service
// submits mapping closures; tests submit synthetic ones), given a
// CancelToken that carries both the DELETE /jobs/{id} cancel flag and the
// per-job deadline. Terminal jobs are retained for polling and garbage-
// collected by age and count. All admission (sync /map and async /jobs)
// funnels through submit(), so QueueFull is the single 503 source and
// ServerStats sees every request.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "jobs/job_queue.hpp"
#include "jobs/server_stats.hpp"
#include "obs/trace.hpp"
#include "util/cancellation.hpp"
#include "util/thread_pool.hpp"

namespace bwaver {

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled, kTimedOut };

const char* to_string(JobState state);
bool is_terminal(JobState state);

struct JobManagerConfig {
  std::size_t workers = 4;
  std::size_t queue_capacity = 64;
  /// 0 = no deadline. Applies from submit time (queue wait counts against
  /// it — a job that waited its whole budget times out without running).
  std::chrono::milliseconds default_timeout{0};
  /// Terminal jobs older than this are GC'd (0 = immediately collectable).
  std::chrono::milliseconds retention{std::chrono::minutes(10)};
  /// Hard cap on retained terminal jobs (oldest evicted first).
  std::size_t max_retained = 1024;
  /// Shared metrics registry backing ServerStats (null = private registry).
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Trace sink for per-job span trees (null = tracing off; jobs then run
  /// with only the ambient metrics context installed).
  std::shared_ptr<obs::TraceCollector> traces;
};

/// Immutable status snapshot handed to the HTTP layer.
struct JobRecord {
  std::uint64_t id = 0;
  std::string label;  ///< e.g. the target reference name
  JobPriority priority = JobPriority::kNormal;
  JobState state = JobState::kQueued;
  std::string request_id;        ///< trace-context id (X-Request-Id or job-<id>)
  std::string error;             ///< non-empty for kFailed
  std::string cancel_reason;     ///< who/why, for kCancelled ("client", "hedge-lost")
  double queue_wait_ms = 0.0;    ///< submit -> pickup (or now, while queued)
  double run_ms = 0.0;           ///< pickup -> finish (or now, while running)
  bool has_result = false;
};

class JobManager {
 public:
  /// A job body: runs on a worker, polls `cancel` at checkpoints, returns
  /// the result payload (SAM for mapping jobs). Throwing OperationCancelled
  /// classifies as cancelled/timed-out; any other exception as failed.
  using JobFn = std::function<std::string(const CancelToken& cancel)>;

  explicit JobManager(JobManagerConfig config = JobManagerConfig{});
  ~JobManager();
  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Admits a job or throws QueueFull (counted in stats as a rejection).
  /// `timeout` overrides the config default; nullopt keeps it. `request_id`
  /// becomes the job's trace-context id (empty = derive "job-<id>").
  std::uint64_t submit(std::string label, JobFn fn,
                       JobPriority priority = JobPriority::kNormal,
                       std::optional<std::chrono::milliseconds> timeout = std::nullopt,
                       std::string request_id = {});

  std::optional<JobRecord> status(std::uint64_t id) const;

  /// Result payload once kDone; nullopt otherwise.
  std::optional<std::string> result(std::uint64_t id) const;

  /// Requests cooperative cancellation. True if the job exists and was not
  /// already terminal (the final state may still become timed_out if the
  /// deadline fires first at a checkpoint). `reason` is an operator-facing
  /// tag recorded on the job and counted per-label in
  /// bwaver_jobs_cancel_requests_total (sanitized to [a-z0-9_-], so the
  /// router's "hedge-lost" cancels are distinguishable from client ones).
  bool cancel(std::uint64_t id, std::string reason = "client");

  /// Blocks until the job reaches a terminal state; throws
  /// std::out_of_range for unknown ids (e.g. already GC'd).
  JobRecord wait(std::uint64_t id);

  /// Snapshot of all retained jobs, newest first.
  std::vector<JobRecord> list() const;

  ServerStats& stats() noexcept { return stats_; }
  const ServerStats& stats() const noexcept { return stats_; }
  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t queue_capacity() const noexcept { return queue_.capacity(); }
  std::size_t workers() const noexcept { return config_.workers; }
  std::size_t retained() const;

  /// Stops admission, drains queued jobs (they run), joins the workers.
  /// Idempotent; called by the destructor.
  void shutdown();

 private:
  struct Job;

  void worker_loop();
  void run_job(const std::shared_ptr<Job>& job);
  void finish(const std::shared_ptr<Job>& job, JobState state, std::string payload,
              std::string error);
  /// Ends the job's root span and files the trace with the collector.
  /// Callers hold job->m (each terminal transition closes exactly once).
  void close_trace_locked(Job& job);
  JobRecord snapshot(const Job& job) const;
  /// Sweeps terminal jobs past retention and enforces max_retained. Callers
  /// hold jobs_mutex_. The just-submitted `keep_id` is never collected.
  void gc_locked(std::uint64_t keep_id);

  JobManagerConfig config_;
  ServerStats stats_;
  JobQueue<std::shared_ptr<Job>> queue_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex jobs_mutex_;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;  ///< ordered: id == age
  std::uint64_t next_id_ = 1;
  bool shut_down_ = false;
};

}  // namespace bwaver
