#include "jobs/server_stats.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

namespace bwaver {

namespace {

// 1, 3, 10, 30, ... ms — a decade ladder with a mid step, 11 finite
// boundaries + overflow = kBuckets.
constexpr double kUppersMs[LatencyHistogram::kBuckets - 1] = {
    1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1'000.0, 3'000.0, 10'000.0, 30'000.0, 100'000.0};

std::string format_ms(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  return buffer;
}

}  // namespace

double LatencyHistogram::bucket_upper_ms(std::size_t i) {
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return kUppersMs[i];
}

void LatencyHistogram::record_ms(double ms) noexcept {
  if (!(ms >= 0.0)) ms = 0.0;  // NaN and negatives clamp to the first bucket
  std::size_t bucket = kBuckets - 1;
  for (std::size_t i = 0; i < kBuckets - 1; ++i) {
    if (ms <= kUppersMs[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(static_cast<std::uint64_t>(ms * 1000.0), std::memory_order_relaxed);
}

double LatencyHistogram::sum_ms() const noexcept {
  return static_cast<double>(sum_us_.load(std::memory_order_relaxed)) / 1000.0;
}

std::string LatencyHistogram::to_json() const {
  std::string json = "{\"count\":" + std::to_string(count()) +
                     ",\"sum_ms\":" + format_ms(sum_ms()) + ",\"buckets\":[";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (i > 0) json += ",";
    json += "{\"le_ms\":";
    json += (i == kBuckets - 1) ? "\"inf\"" : std::to_string(static_cast<long long>(kUppersMs[i]));
    json += ",\"count\":" + std::to_string(cumulative) + "}";
  }
  json += "]}";
  return json;
}

void ServerStats::record_reference(const std::string& name) {
  std::lock_guard<std::mutex> lock(ref_mutex_);
  ++ref_counts_[name];
}

std::map<std::string, std::uint64_t> ServerStats::reference_counts() const {
  std::lock_guard<std::mutex> lock(ref_mutex_);
  return ref_counts_;
}

double ServerStats::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
}

std::string ServerStats::to_json(std::size_t queue_depth, std::size_t queue_capacity,
                                 std::size_t workers, std::size_t jobs_retained,
                                 const RegistryTelemetry* registry) const {
  std::string json = "{";
  json += "\"uptime_seconds\":" + format_ms(uptime_seconds());
  json += ",\"counters\":{";
  json += "\"submitted\":" + std::to_string(submitted.load(std::memory_order_relaxed));
  json += ",\"rejected_queue_full\":" +
          std::to_string(rejected_full.load(std::memory_order_relaxed));
  json += ",\"completed\":" + std::to_string(completed.load(std::memory_order_relaxed));
  json += ",\"failed\":" + std::to_string(failed.load(std::memory_order_relaxed));
  json += ",\"cancelled\":" + std::to_string(cancelled.load(std::memory_order_relaxed));
  json += ",\"timed_out\":" + std::to_string(timed_out.load(std::memory_order_relaxed));
  json += ",\"sync_requests\":" +
          std::to_string(sync_requests.load(std::memory_order_relaxed));
  json += ",\"async_requests\":" +
          std::to_string(async_requests.load(std::memory_order_relaxed));
  json += ",\"reads_mapped\":" +
          std::to_string(reads_mapped.load(std::memory_order_relaxed));
  json += ",\"map_shards\":" +
          std::to_string(map_shards.load(std::memory_order_relaxed));
  json += "}";
  json += ",\"queue\":{\"depth\":" + std::to_string(queue_depth) +
          ",\"capacity\":" + std::to_string(queue_capacity) +
          ",\"workers\":" + std::to_string(workers) +
          ",\"jobs_retained\":" + std::to_string(jobs_retained) + "}";
  json += ",\"histograms\":{\"queue_wait_ms\":" + queue_wait.to_json() +
          ",\"map_time_ms\":" + map_time.to_json() + "}";
  if (registry != nullptr) {
    json += ",\"registry\":{\"loads_mmap\":" + std::to_string(registry->loads_mmap) +
            ",\"loads_copy\":" + std::to_string(registry->loads_copy) +
            ",\"heap_bytes\":" + std::to_string(registry->heap_bytes) +
            ",\"mapped_bytes\":" + std::to_string(registry->mapped_bytes) + "}";
  }
  json += ",\"per_reference\":{";
  bool first = true;
  for (const auto& [name, count] : reference_counts()) {
    if (!first) json += ",";
    first = false;
    // Reference names are registry-validated (no whitespace, '/'); escape
    // quotes/backslashes anyway so the document stays well-formed.
    std::string escaped;
    for (const char c : name) {
      if (c == '"' || c == '\\') escaped.push_back('\\');
      escaped.push_back(c);
    }
    json += "\"" + escaped + "\":" + std::to_string(count);
  }
  json += "}}";
  return json;
}

std::string ServerStats::summary_line() const {
  char buffer[320];
  std::snprintf(buffer, sizeof(buffer),
                "jobs: %llu submitted, %llu rejected, %llu done, %llu failed, "
                "%llu cancelled, %llu timed out; %llu reads in %llu shard(s); "
                "mean queue wait %.1f ms, mean map %.1f ms",
                static_cast<unsigned long long>(submitted.load()),
                static_cast<unsigned long long>(rejected_full.load()),
                static_cast<unsigned long long>(completed.load()),
                static_cast<unsigned long long>(failed.load()),
                static_cast<unsigned long long>(cancelled.load()),
                static_cast<unsigned long long>(timed_out.load()),
                static_cast<unsigned long long>(reads_mapped.load()),
                static_cast<unsigned long long>(map_shards.load()),
                queue_wait.count() ? queue_wait.sum_ms() / static_cast<double>(queue_wait.count()) : 0.0,
                map_time.count() ? map_time.sum_ms() / static_cast<double>(map_time.count()) : 0.0);
  return buffer;
}

}  // namespace bwaver
