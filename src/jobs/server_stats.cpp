#include "jobs/server_stats.hpp"

#include <cmath>
#include <cstdio>

namespace bwaver {

namespace {

std::string format_ms(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  return buffer;
}

/// Legacy /stats histogram block: cumulative "le"-style JSON,
/// {"count":N,"sum_ms":S,"buckets":[{"le_ms":1,"count":n0},...]}.
/// Bounds are stored in seconds (Prometheus convention) and rendered in
/// milliseconds here to keep the document schema of earlier releases.
std::string latency_json(const obs::Histogram& h) {
  std::string json = "{\"count\":" + std::to_string(h.count()) +
                     ",\"sum_ms\":" + format_ms(h.sum_ms()) + ",\"buckets\":[";
  for (std::size_t i = 0; i < h.bounds().size(); ++i) {
    if (i > 0) json += ",";
    json += "{\"le_ms\":" + std::to_string(std::llround(h.bounds()[i] * 1000.0));
    json += ",\"count\":" + std::to_string(h.cumulative_count(i)) + "}";
  }
  if (!h.bounds().empty()) json += ",";
  json += "{\"le_ms\":\"inf\",\"count\":" +
          std::to_string(h.cumulative_count(h.bounds().size())) + "}]}";
  return json;
}

constexpr char kReferenceCounter[] = "bwaver_reference_requests_total";

}  // namespace

ServerStats::ServerStats(std::shared_ptr<obs::MetricsRegistry> registry)
    : metrics(registry ? std::move(registry)
                       : std::make_shared<obs::MetricsRegistry>()),
      submitted(metrics->counter("bwaver_jobs_submitted_total",
                                 "Jobs accepted into the bounded queue")),
      rejected_full(metrics->counter("bwaver_jobs_rejected_total",
                                     "Jobs rejected by admission control",
                                     {{"reason", "queue_full"}})),
      completed(metrics->counter("bwaver_jobs_finished_total",
                                 "Jobs that reached a terminal state, by state",
                                 {{"state", "done"}})),
      failed(metrics->counter("bwaver_jobs_finished_total",
                              "Jobs that reached a terminal state, by state",
                              {{"state", "failed"}})),
      cancelled(metrics->counter("bwaver_jobs_finished_total",
                                 "Jobs that reached a terminal state, by state",
                                 {{"state", "cancelled"}})),
      timed_out(metrics->counter("bwaver_jobs_finished_total",
                                 "Jobs that reached a terminal state, by state",
                                 {{"state", "timed_out"}})),
      sync_requests(metrics->counter("bwaver_map_requests_total",
                                     "Mapping requests admitted, by HTTP mode",
                                     {{"mode", "sync"}})),
      async_requests(metrics->counter("bwaver_map_requests_total",
                                      "Mapping requests admitted, by HTTP mode",
                                      {{"mode", "async"}})),
      reads_mapped(metrics->counter("bwaver_reads_mapped_total",
                                    "Reads mapped by completed tasks")),
      map_shards(metrics->counter("bwaver_map_shards_total",
                                  "Parallel shards dispatched by mapping tasks")),
      queue_wait(metrics->histogram("bwaver_job_queue_wait_seconds",
                                    "Job wait from submit to worker pickup",
                                    obs::Histogram::default_time_bounds())),
      map_time(metrics->histogram("bwaver_job_run_seconds",
                                  "Worker run time of successful jobs",
                                  obs::Histogram::default_time_bounds())),
      start_(std::chrono::steady_clock::now()) {}

void ServerStats::record_reference(const std::string& name) {
  metrics
      ->counter(kReferenceCounter, "Mapping requests per reference",
                {{"reference", name}})
      .inc();
}

std::map<std::string, std::uint64_t> ServerStats::reference_counts() const {
  std::map<std::string, std::uint64_t> counts;
  for (const auto& [labels, value] : metrics->counter_values(kReferenceCounter)) {
    for (const auto& [key, label_value] : labels) {
      if (key == "reference") counts[label_value] = value;
    }
  }
  return counts;
}

double ServerStats::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
}

std::string ServerStats::to_json(std::size_t queue_depth, std::size_t queue_capacity,
                                 std::size_t workers, std::size_t jobs_retained,
                                 const RegistryTelemetry* registry,
                                 const char* engine, const char* rank_kernel) const {
  std::string json = "{";
  json += "\"uptime_seconds\":" + format_ms(uptime_seconds());
  if (engine != nullptr) {
    json += ",\"engine\":\"" + std::string(engine) + "\"";
  }
  if (rank_kernel != nullptr) {
    json += ",\"rank_kernel\":\"" + std::string(rank_kernel) + "\"";
  }
  json += ",\"counters\":{";
  json += "\"submitted\":" + std::to_string(submitted.value());
  json += ",\"rejected_queue_full\":" + std::to_string(rejected_full.value());
  json += ",\"completed\":" + std::to_string(completed.value());
  json += ",\"failed\":" + std::to_string(failed.value());
  json += ",\"cancelled\":" + std::to_string(cancelled.value());
  json += ",\"timed_out\":" + std::to_string(timed_out.value());
  json += ",\"sync_requests\":" + std::to_string(sync_requests.value());
  json += ",\"async_requests\":" + std::to_string(async_requests.value());
  json += ",\"reads_mapped\":" + std::to_string(reads_mapped.value());
  json += ",\"map_shards\":" + std::to_string(map_shards.value());
  json += "}";
  json += ",\"queue\":{\"depth\":" + std::to_string(queue_depth) +
          ",\"capacity\":" + std::to_string(queue_capacity) +
          ",\"workers\":" + std::to_string(workers) +
          ",\"jobs_retained\":" + std::to_string(jobs_retained) + "}";
  json += ",\"histograms\":{\"queue_wait_ms\":" + latency_json(queue_wait) +
          ",\"map_time_ms\":" + latency_json(map_time) + "}";
  if (registry != nullptr) {
    json += ",\"registry\":{\"loads_mmap\":" + std::to_string(registry->loads_mmap) +
            ",\"loads_copy\":" + std::to_string(registry->loads_copy) +
            ",\"heap_bytes\":" + std::to_string(registry->heap_bytes) +
            ",\"mapped_bytes\":" + std::to_string(registry->mapped_bytes) + "}";
  }
  json += ",\"per_reference\":{";
  bool first = true;
  for (const auto& [name, count] : reference_counts()) {
    if (!first) json += ",";
    first = false;
    // Reference names are registry-validated (no whitespace, '/'); escape
    // quotes/backslashes anyway so the document stays well-formed.
    std::string escaped;
    for (const char c : name) {
      if (c == '"' || c == '\\') escaped.push_back('\\');
      escaped.push_back(c);
    }
    json += "\"" + escaped + "\":" + std::to_string(count);
  }
  json += "}}";
  return json;
}

std::string ServerStats::summary_line() const {
  char buffer[320];
  std::snprintf(buffer, sizeof(buffer),
                "jobs: %llu submitted, %llu rejected, %llu done, %llu failed, "
                "%llu cancelled, %llu timed out; %llu reads in %llu shard(s); "
                "mean queue wait %.1f ms, mean map %.1f ms",
                static_cast<unsigned long long>(submitted.value()),
                static_cast<unsigned long long>(rejected_full.value()),
                static_cast<unsigned long long>(completed.value()),
                static_cast<unsigned long long>(failed.value()),
                static_cast<unsigned long long>(cancelled.value()),
                static_cast<unsigned long long>(timed_out.value()),
                static_cast<unsigned long long>(reads_mapped.value()),
                static_cast<unsigned long long>(map_shards.value()),
                queue_wait.mean_ms(), map_time.mean_ms());
  return buffer;
}

}  // namespace bwaver
