#include "jobs/job_manager.hpp"

#include <condition_variable>

#include "util/logging.hpp"

namespace bwaver {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Cancel reasons become metric label values; clamp them to a safe
/// alphabet and length so callers cannot mint unbounded label sets.
std::string sanitize_cancel_reason(std::string reason) {
  if (reason.empty()) return "client";
  if (reason.size() > 32) reason.resize(32);
  for (char& c : reason) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!ok) c = '_';
  }
  return reason;
}

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kTimedOut: return "timed_out";
  }
  return "?";
}

bool is_terminal(JobState state) {
  return state != JobState::kQueued && state != JobState::kRunning;
}

struct JobManager::Job {
  std::uint64_t id = 0;
  std::string label;
  std::string request_id;
  JobPriority priority = JobPriority::kNormal;
  JobFn fn;
  CancelToken cancel;
  Clock::time_point submitted;

  // Per-job trace (null when the manager has no collector). The root span
  // covers submit -> terminal; queue_wait and run nest under it. Guarded by
  // `m` like the rest of the mutable state.
  std::shared_ptr<obs::Trace> trace;
  std::uint32_t root_span = 0;

  // The mutable half of the state machine, guarded by `m`; `cv` fires on
  // every transition so wait() can block on terminality.
  mutable std::mutex m;
  std::condition_variable cv;
  JobState state = JobState::kQueued;
  std::string payload;
  std::string error;
  std::string cancel_reason;
  Clock::time_point started;
  Clock::time_point finished;
};

JobManager::JobManager(JobManagerConfig config)
    : config_([&config] {
        if (config.workers == 0) config.workers = 1;
        if (config.queue_capacity == 0) config.queue_capacity = 1;
        return config;
      }()),
      stats_(config_.metrics),
      queue_(config_.queue_capacity),
      pool_(std::make_unique<ThreadPool>(config_.workers)) {
  for (std::size_t i = 0; i < config_.workers; ++i) {
    pool_->post([this] { worker_loop(); });
  }
}

JobManager::~JobManager() { shutdown(); }

std::uint64_t JobManager::submit(std::string label, JobFn fn, JobPriority priority,
                                 std::optional<std::chrono::milliseconds> timeout,
                                 std::string request_id) {
  auto job = std::make_shared<Job>();
  job->label = std::move(label);
  job->request_id = std::move(request_id);
  job->priority = priority;
  job->fn = std::move(fn);
  job->submitted = Clock::now();
  const auto effective_timeout = timeout.value_or(config_.default_timeout);
  if (effective_timeout.count() > 0) {
    job->cancel.set_deadline(job->submitted + effective_timeout);
  }

  std::lock_guard<std::mutex> lock(jobs_mutex_);
  if (shut_down_) throw std::runtime_error("JobManager: submit after shutdown");
  job->id = next_id_;
  if (job->request_id.empty()) job->request_id = "job-" + std::to_string(job->id);
  if (config_.traces) {
    job->trace = config_.traces->start_trace(job->request_id);
    if (job->trace) job->root_span = job->trace->begin("job:" + job->label);
  }
  // Record before publishing to the queue so a worker can never be running a
  // job that status() does not yet know about.
  jobs_.emplace(job->id, job);
  if (!queue_.try_push(job, priority)) {
    jobs_.erase(job->id);
    stats_.rejected_full.inc();
    throw QueueFull(queue_.capacity());
  }
  ++next_id_;
  stats_.submitted.inc();
  gc_locked(job->id);
  return job->id;
}

void JobManager::worker_loop() {
  while (auto popped = queue_.pop()) {
    run_job(*popped);
  }
}

void JobManager::run_job(const std::shared_ptr<Job>& job) {
  {
    std::lock_guard<std::mutex> lock(job->m);
    if (is_terminal(job->state)) return;  // cancelled while queued
    if (job->cancel.deadline_passed()) {
      // Spent its whole budget waiting — never runs.
      job->state = JobState::kTimedOut;
      job->error = "deadline expired while queued";
      job->finished = Clock::now();
      stats_.timed_out.inc();
      if (job->trace) {
        job->trace->emit("queue_wait", job->root_span, 0.0,
                         ms_between(job->submitted, job->finished));
      }
      close_trace_locked(*job);
      job->cv.notify_all();
      return;
    }
    job->state = JobState::kRunning;
    job->started = Clock::now();
    const double wait_ms = ms_between(job->submitted, job->started);
    stats_.queue_wait.observe_ms(wait_ms);
    if (job->trace) job->trace->emit("queue_wait", job->root_span, 0.0, wait_ms);
  }

  // Ambient context for the job body: the metrics registry always (so the
  // mapping stages find their histograms), the trace only when one exists.
  obs::ObsContext context;
  context.trace = job->trace.get();
  context.parent_span = job->root_span;
  context.metrics = stats_.metrics.get();
  obs::ScopedObsContext scoped(context);

  try {
    std::string payload;
    {
      obs::TraceSpan run_span("run");
      payload = job->fn(job->cancel);
    }
    finish(job, JobState::kDone, std::move(payload), "");
  } catch (const OperationCancelled&) {
    // The checkpoint fired: classify by which stop reason was raised. An
    // explicit DELETE wins over a deadline that also happens to be past.
    const JobState state = job->cancel.cancel_requested() ? JobState::kCancelled
                                                          : JobState::kTimedOut;
    finish(job, state, "", to_string(state));
  } catch (const std::exception& e) {
    finish(job, JobState::kFailed, "", e.what());
  } catch (...) {
    finish(job, JobState::kFailed, "", "unknown error");
  }
}

void JobManager::finish(const std::shared_ptr<Job>& job, JobState state,
                        std::string payload, std::string error) {
  {
    std::lock_guard<std::mutex> lock(job->m);
    job->state = state;
    job->payload = std::move(payload);
    job->error = std::move(error);
    job->finished = Clock::now();
    if (state == JobState::kDone) {
      stats_.map_time.observe_ms(ms_between(job->started, job->finished));
    }
    // Counters must be bumped before any waiter can observe the terminal
    // state, so a wait()+stats() pair always sees consistent accounting.
    switch (state) {
      case JobState::kDone:
        stats_.completed.inc();
        break;
      case JobState::kFailed:
        stats_.failed.inc();
        LOG_WARN << "job " << job->id << " (" << job->label
                 << ") failed: " << job->error;
        break;
      case JobState::kCancelled:
        stats_.cancelled.inc();
        break;
      case JobState::kTimedOut:
        stats_.timed_out.inc();
        break;
      default:
        break;
    }
    close_trace_locked(*job);
  }
  job->cv.notify_all();
}

void JobManager::close_trace_locked(Job& job) {
  if (!job.trace) return;
  job.trace->end(job.root_span);
  if (config_.traces) config_.traces->finish(job.trace);
}

JobRecord JobManager::snapshot(const Job& job) const {
  std::lock_guard<std::mutex> lock(job.m);
  JobRecord record;
  record.id = job.id;
  record.label = job.label;
  record.request_id = job.request_id;
  record.priority = job.priority;
  record.state = job.state;
  record.error = job.error;
  record.cancel_reason = job.cancel_reason;
  const auto now = Clock::now();
  switch (job.state) {
    case JobState::kQueued:
      record.queue_wait_ms = ms_between(job.submitted, now);
      break;
    case JobState::kRunning:
      record.queue_wait_ms = ms_between(job.submitted, job.started);
      record.run_ms = ms_between(job.started, now);
      break;
    default:
      record.queue_wait_ms = ms_between(
          job.submitted, job.started == Clock::time_point{} ? job.finished : job.started);
      if (job.started != Clock::time_point{}) {
        record.run_ms = ms_between(job.started, job.finished);
      }
      break;
  }
  record.has_result = job.state == JobState::kDone;
  return record;
}

std::optional<JobRecord> JobManager::status(std::uint64_t id) const {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return std::nullopt;
    job = it->second;
  }
  return snapshot(*job);
}

std::optional<std::string> JobManager::result(std::uint64_t id) const {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return std::nullopt;
    job = it->second;
  }
  std::lock_guard<std::mutex> lock(job->m);
  if (job->state != JobState::kDone) return std::nullopt;
  return job->payload;
}

bool JobManager::cancel(std::uint64_t id, std::string reason) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    job = it->second;
  }
  const std::string tag = sanitize_cancel_reason(std::move(reason));
  {
    std::lock_guard<std::mutex> lock(job->m);
    if (is_terminal(job->state)) return false;
    stats_.metrics
        ->counter("bwaver_jobs_cancel_requests_total",
                  "Cancellation requests accepted, by reason", {{"reason", tag}})
        .inc();
    job->cancel_reason = tag;
    job->cancel.request_cancel();
    if (job->state == JobState::kQueued) {
      // Transition immediately so polls see "cancelled" without waiting for
      // a worker to reach it; the worker skips terminal jobs on pickup.
      job->state = JobState::kCancelled;
      job->finished = Clock::now();
      stats_.cancelled.inc();
      close_trace_locked(*job);
    }
  }
  job->cv.notify_all();
  return true;
}

JobRecord JobManager::wait(std::uint64_t id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) throw std::out_of_range("JobManager: unknown job id");
    job = it->second;
  }
  {
    std::unique_lock<std::mutex> lock(job->m);
    job->cv.wait(lock, [&job] { return is_terminal(job->state); });
  }
  return snapshot(*job);
}

std::vector<JobRecord> JobManager::list() const {
  std::vector<std::shared_ptr<Job>> held;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    held.reserve(jobs_.size());
    for (auto it = jobs_.rbegin(); it != jobs_.rend(); ++it) held.push_back(it->second);
  }
  std::vector<JobRecord> records;
  records.reserve(held.size());
  for (const auto& job : held) records.push_back(snapshot(*job));
  return records;
}

std::size_t JobManager::retained() const {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  return jobs_.size();
}

void JobManager::gc_locked(std::uint64_t keep_id) {
  const auto now = Clock::now();
  std::size_t terminal = 0;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->first == keep_id) {
      // Never collect the job this submit just created, even if a worker
      // already finished it and the retention window is zero.
      ++it;
      continue;
    }
    const auto& job = *it->second;
    bool drop = false;
    {
      std::lock_guard<std::mutex> lock(job.m);
      if (is_terminal(job.state)) {
        ++terminal;
        drop = now - job.finished > config_.retention;
      }
    }
    if (drop) {
      --terminal;
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  // Age cap: evict the oldest terminal jobs beyond max_retained (ids are
  // monotonic, so map order is age order).
  for (auto it = jobs_.begin(); terminal > config_.max_retained && it != jobs_.end();) {
    if (it->first == keep_id) {
      ++it;
      continue;
    }
    bool drop = false;
    {
      std::lock_guard<std::mutex> lock(it->second->m);
      drop = is_terminal(it->second->state);
    }
    if (drop) {
      --terminal;
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
}

void JobManager::shutdown() {
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.close();
  pool_.reset();  // joins the workers after the queue drains
}

}  // namespace bwaver
