// Bounded MPMC priority queue — the admission-control choke point of the
// async mapping-job engine.
//
// The capacity is a hard ceiling over *all* priority bands: once reached,
// push() fails with the typed QueueFull so the HTTP layer can answer
// 503 + Retry-After instead of letting a million-user burst buffer
// unbounded work. pop() serves strictly by priority (high before normal
// before low) and FIFO within a band, blocking until an item arrives or
// the queue is closed. close() wakes all waiters; remaining items are
// still drained (pop returns them) so shutdown never drops accepted work.
#pragma once

#include <array>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>

namespace bwaver {

/// Admission-control rejection: the queue is at hard capacity.
struct QueueFull : std::runtime_error {
  explicit QueueFull(std::size_t capacity)
      : std::runtime_error("job queue full (capacity " + std::to_string(capacity) + ")"),
        capacity(capacity) {}
  std::size_t capacity;
};

enum class JobPriority : int { kHigh = 0, kNormal = 1, kLow = 2 };

inline const char* to_string(JobPriority priority) {
  switch (priority) {
    case JobPriority::kHigh: return "high";
    case JobPriority::kNormal: return "normal";
    case JobPriority::kLow: return "low";
  }
  return "?";
}

template <typename T>
class JobQueue {
 public:
  static constexpr std::size_t kNumPriorities = 3;

  explicit JobQueue(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Enqueues or throws QueueFull / std::runtime_error (closed).
  void push(T item, JobPriority priority = JobPriority::kNormal) {
    if (!try_push(std::move(item), priority)) throw QueueFull(capacity_);
  }

  /// Returns false when at capacity; throws only when closed.
  bool try_push(T item, JobPriority priority = JobPriority::kNormal) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) throw std::runtime_error("JobQueue: push after close");
      if (size_ >= capacity_) return false;
      bands_[static_cast<std::size_t>(priority)].push_back(std::move(item));
      ++size_;
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and*
  /// drained; returns nullopt only in the latter case.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || size_ > 0; });
    return pop_locked();
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    return pop_locked();
  }

  /// Closes the queue: pushes start throwing, blocked pops wake. Items
  /// already accepted remain poppable.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  std::size_t capacity() const noexcept { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  std::optional<T> pop_locked() {
    for (auto& band : bands_) {
      if (band.empty()) continue;
      T item = std::move(band.front());
      band.pop_front();
      --size_;
      return item;
    }
    return std::nullopt;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::array<std::deque<T>, kNumPriorities> bands_;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace bwaver
