// Server telemetry for the mapping-job subsystem: lock-free counters,
// fixed-bucket latency histograms, and per-reference request counts,
// exported as JSON on GET /stats and in operator logs.
//
// Counters and histogram buckets are plain relaxed atomics — every /map
// and every worker touches them, so they must never contend. Only the
// per-reference map (unbounded key set) takes a mutex, on the request
// path where a parse of the FASTQ body dwarfs it.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace bwaver {

/// Registry snapshot exported inside /stats (see IndexRegistry): how many
/// archive loads each path served and how many bytes are currently mapped
/// versus heap-resident.
struct RegistryTelemetry {
  std::uint64_t loads_mmap = 0;
  std::uint64_t loads_copy = 0;
  std::uint64_t heap_bytes = 0;
  std::uint64_t mapped_bytes = 0;
};

/// Fixed-boundary latency histogram (milliseconds). Boundaries are
/// exponential — 1 ms to ~100 s — which covers queue waits under load and
/// chromosome-scale mapping times in one shape. Thread-safe, wait-free
/// recording.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 12;

  /// Upper bound (inclusive) of bucket i in milliseconds; the last bucket
  /// is unbounded.
  static double bucket_upper_ms(std::size_t i);

  void record_ms(double ms) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum_ms() const noexcept;

  /// Cumulative "le"-style JSON object:
  /// {"count":N,"sum_ms":S,"buckets":[{"le_ms":1,"count":n0},...]}.
  std::string to_json() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};  ///< microseconds, to keep it integral
};

class ServerStats {
 public:
  ServerStats() : start_(std::chrono::steady_clock::now()) {}

  // Admission + lifecycle counters (relaxed; exactness across a snapshot is
  // not required, exactness per counter is).
  std::atomic<std::uint64_t> submitted{0};       ///< accepted into the queue
  std::atomic<std::uint64_t> rejected_full{0};   ///< 503'd by admission control
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> timed_out{0};
  std::atomic<std::uint64_t> sync_requests{0};   ///< POST /map (waits inline)
  std::atomic<std::uint64_t> async_requests{0};  ///< POST /jobs

  // Hot-path throughput gauges: reads mapped by completed tasks and the
  // parallel shards those tasks dispatched (shards / reads exposes the
  // effective shard size operators tune via PipelineConfig::shard_size).
  std::atomic<std::uint64_t> reads_mapped{0};
  std::atomic<std::uint64_t> map_shards{0};

  LatencyHistogram queue_wait;  ///< submit -> worker pickup
  LatencyHistogram map_time;    ///< worker run time (successful jobs)

  void record_reference(const std::string& name);
  std::map<std::string, std::uint64_t> reference_counts() const;

  double uptime_seconds() const;

  /// Full /stats document. `queue_depth`/`queue_capacity`/`workers`
  /// describe the live queue and are supplied by the job manager;
  /// `registry` (optional) adds the index-load telemetry block.
  std::string to_json(std::size_t queue_depth, std::size_t queue_capacity,
                      std::size_t workers, std::size_t jobs_retained,
                      const RegistryTelemetry* registry = nullptr) const;

  /// One-line operator log summary.
  std::string summary_line() const;

 private:
  std::chrono::steady_clock::time_point start_;
  mutable std::mutex ref_mutex_;
  std::map<std::string, std::uint64_t> ref_counts_;
};

}  // namespace bwaver
