// Server telemetry for the mapping-job subsystem, backed by the unified
// obs::MetricsRegistry: every counter and histogram here is a registry
// metric (so GET /metrics exports it in Prometheus text format) while this
// class keeps the legacy /stats JSON document and operator summary line.
//
// The members are references into the registry — registration happens once
// in the constructor, recording afterwards is wait-free relaxed atomics.
// The registry is shared: pass the service-wide one in, or default-construct
// to get a private registry (tests, ad-hoc managers).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "obs/metrics.hpp"

namespace bwaver {

/// Registry snapshot exported inside /stats (see IndexRegistry): how many
/// archive loads each path served and how many bytes are currently mapped
/// versus heap-resident.
struct RegistryTelemetry {
  std::uint64_t loads_mmap = 0;
  std::uint64_t loads_copy = 0;
  std::uint64_t heap_bytes = 0;
  std::uint64_t mapped_bytes = 0;
};

class ServerStats {
 public:
  explicit ServerStats(std::shared_ptr<obs::MetricsRegistry> registry = nullptr);
  ServerStats(const ServerStats&) = delete;
  ServerStats& operator=(const ServerStats&) = delete;

  /// The backing registry (never null; shared with the web service so
  /// /metrics and /stats read the same atoms).
  std::shared_ptr<obs::MetricsRegistry> metrics;

  // Admission + lifecycle counters (relaxed; exactness across a snapshot is
  // not required, exactness per counter is).
  obs::Counter& submitted;       ///< accepted into the queue
  obs::Counter& rejected_full;   ///< 503'd by admission control
  obs::Counter& completed;
  obs::Counter& failed;
  obs::Counter& cancelled;
  obs::Counter& timed_out;
  obs::Counter& sync_requests;   ///< POST /map (waits inline)
  obs::Counter& async_requests;  ///< POST /jobs

  // Hot-path throughput counters: reads mapped by completed tasks and the
  // parallel shards those tasks dispatched (shards / reads exposes the
  // effective shard size operators tune via PipelineConfig::shard_size).
  obs::Counter& reads_mapped;
  obs::Counter& map_shards;

  obs::Histogram& queue_wait;  ///< submit -> worker pickup (seconds)
  obs::Histogram& map_time;    ///< worker run time, successful jobs (seconds)

  void record_reference(const std::string& name);
  std::map<std::string, std::uint64_t> reference_counts() const;

  double uptime_seconds() const;

  /// Full /stats document. `queue_depth`/`queue_capacity`/`workers`
  /// describe the live queue and are supplied by the job manager;
  /// `registry` (optional) adds the index-load telemetry block; `engine` /
  /// `rank_kernel` (optional) record the service's configured mapping
  /// engine and the SIMD kernel its ranks dispatch to.
  std::string to_json(std::size_t queue_depth, std::size_t queue_capacity,
                      std::size_t workers, std::size_t jobs_retained,
                      const RegistryTelemetry* registry = nullptr,
                      const char* engine = nullptr,
                      const char* rank_kernel = nullptr) const;

  /// One-line operator log summary.
  std::string summary_line() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bwaver
