// Multi-reference index registry — the serving-side counterpart of the
// archive format.
//
// A registry manages a set of named references backed by a store directory
// (`<dir>/manifest.tsv` mapping name -> archive file -> size). Indexes are
// loaded lazily on first acquire() and handed out as refcounted
// shared_ptr<const StoredIndex> read handles: any number of mapping requests
// can read one index concurrently (all FmIndex/ReferenceSet queries are
// const), while add/evict/load take the write side of a shared_mutex. When
// resident indexes exceed the memory budget the least-recently-used ones are
// evicted — eviction only drops the registry's reference, so in-flight
// readers holding a handle finish undisturbed and the memory is reclaimed
// when the last handle dies.
//
// With an empty store directory the registry is memory-only: add() keeps the
// index resident but nothing is persisted (the web service's legacy
// upload-and-map mode).
//
// Entries carry a monotonically increasing *generation*. rollover() swaps a
// reference for a freshly built index with zero downtime: the new archive is
// written and validated by a full re-read while mapping traffic keeps
// flowing, then the registry entry flips to the new generation under the
// write lock (a pointer swap) and the old archive is removed. In-flight
// readers holding the previous generation's handle finish undisturbed and
// drain via refcount.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "store/index_archive.hpp"

namespace bwaver {

/// Snapshot of one registry entry, for listings and the web API.
struct RegistryEntry {
  std::string name;
  std::string archive_path;        ///< empty in memory-only mode
  std::uint64_t archive_bytes = 0; ///< on-disk size (0 in memory-only mode)
  std::size_t resident_bytes = 0;  ///< heap + mapped; 0 when not resident
  std::size_t heap_bytes = 0;      ///< private allocations of the resident copy
  std::size_t mapped_bytes = 0;    ///< file-backed (mmap-adopted) bytes
  bool resident = false;
  std::uint64_t text_length = 0;
  std::uint64_t num_sequences = 0;
  std::uint64_t generation = 1;    ///< bumped by add()-replace and rollover()
};

class IndexRegistry {
 public:
  using Handle = std::shared_ptr<const StoredIndex>;

  static constexpr std::size_t kDefaultMemoryBudget = std::size_t{4} << 30;  // 4 GiB

  /// Budget divisor for mapped bytes: an mmap-adopted byte is charged 1/4 of
  /// a heap byte (clean file-backed pages are reclaimable by the OS).
  static constexpr std::size_t kMappedWeight = 4;

  /// Opens (or creates) a registry. A non-empty `store_dir` is created if
  /// missing and its manifest is scanned; archives are not loaded until
  /// acquired. `load_mode` selects how v3 archives are materialized on
  /// acquire (v1/v2 archives always copy).
  explicit IndexRegistry(std::string store_dir = "",
                         std::size_t memory_budget_bytes = kDefaultMemoryBudget,
                         LoadMode load_mode = default_load_mode());

  /// Returns a read handle for `name`, loading the archive if the index is
  /// not resident. Throws std::out_of_range for unknown names and IoError
  /// for unreadable/corrupt archives.
  Handle acquire(const std::string& name);

  /// Registers a freshly built index under `name` (replacing any previous
  /// entry), persists it to the store directory when one is configured, and
  /// returns a read handle. Names must be non-empty and free of whitespace
  /// and '/' (they become manifest keys and file names).
  Handle add(const std::string& name, StoredIndex stored);

  /// Replaces `name` with a new index generation without a serving gap.
  /// The archive for generation N+1 is written to `<name>.g<N+1>.bwva` and
  /// validated by a full re-read *before* the entry flips, so mapping
  /// requests keep resolving against generation N until the new one is
  /// proven loadable; the flip itself is a pointer swap under the write
  /// lock and the old archive is deleted afterwards. Throws
  /// std::out_of_range when `name` is not registered (rollover replaces,
  /// it does not create — use add() for first registration).
  Handle rollover(const std::string& name, StoredIndex stored);

  /// Registers an existing archive file under `name` WITHOUT loading the
  /// index — the blockwise builder streams archives to disk precisely so
  /// the full index never has to be resident, and adopt() keeps that
  /// property through registration. The file is validated by a cheap
  /// header + per-section-CRC read and renamed into the store directory
  /// (same filesystem expected), replacing any previous entry (its
  /// resident copy, if any, is dropped; in-flight handles drain by
  /// refcount). Requires a persistent store; throws std::logic_error in
  /// memory-only mode and IoError when the archive does not validate.
  void adopt(const std::string& name, const std::string& archive_file);

  /// Current generation of `name` (throws std::out_of_range when unknown).
  std::uint64_t generation(const std::string& name) const;

  /// Drops the resident copy of `name` (in-flight handles stay valid).
  /// Returns false if the name is unknown or not resident. In persistent
  /// mode the entry remains acquirable from its archive.
  bool evict(const std::string& name);

  bool contains(const std::string& name) const;
  std::size_t size() const;

  /// Entries sorted by name.
  std::vector<RegistryEntry> list() const;

  std::size_t resident_bytes() const;
  /// Heap-only / mapped-only parts of resident_bytes().
  std::size_t heap_bytes() const;
  std::size_t mapped_bytes() const;
  std::size_t memory_budget() const noexcept { return memory_budget_; }
  LoadMode load_mode() const noexcept { return load_mode_; }
  const std::string& store_dir() const noexcept { return store_dir_; }

  /// Lifetime counters: archive loads served by each path.
  std::uint64_t loads_mmap() const noexcept {
    return loads_mmap_.load(std::memory_order_relaxed);
  }
  std::uint64_t loads_copy() const noexcept {
    return loads_copy_.load(std::memory_order_relaxed);
  }
  /// Lifetime counters: resident copies dropped by POST /evict and by the
  /// LRU budget enforcer, respectively.
  std::uint64_t evictions_explicit() const noexcept {
    return evictions_explicit_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions_budget() const noexcept {
    return evictions_budget_.load(std::memory_order_relaxed);
  }

  /// Archive path registered for `name` ("" in memory-only mode). Throws
  /// std::out_of_range for unknown names.
  std::string archive_path(const std::string& name) const;

 private:
  struct Entry {
    std::string archive_path;
    std::uint64_t archive_bytes = 0;
    Handle resident;
    std::size_t resident_bytes = 0;
    std::size_t heap_bytes = 0;
    std::size_t mapped_bytes = 0;
    std::uint64_t text_length = 0;
    std::uint64_t num_sequences = 0;
    std::uint64_t generation = 1;
    std::atomic<std::uint64_t> last_used{0};
  };

  void load_manifest();
  void save_manifest_locked() const;
  /// Evicts LRU residents (never `keep`) until the budget is met or nothing
  /// else can be dropped.
  void enforce_budget_locked(const std::string& keep);
  std::size_t resident_bytes_locked() const;
  /// Weighted budget charge: heap + mapped / kMappedWeight.
  std::size_t charged_bytes_locked() const;
  void set_resident_locked(Entry& entry, Handle handle);
  void drop_resident_locked(Entry& entry);

  std::string store_dir_;
  std::size_t memory_budget_;
  LoadMode load_mode_ = LoadMode::kCopy;
  std::atomic<std::uint64_t> loads_mmap_{0};
  std::atomic<std::uint64_t> loads_copy_{0};
  std::atomic<std::uint64_t> evictions_explicit_{0};
  std::atomic<std::uint64_t> evictions_budget_{0};
  mutable std::shared_mutex mutex_;
  std::atomic<std::uint64_t> clock_{0};
  // unique_ptr: Entry holds an atomic LRU stamp (bumped under the shared
  // lock) and is therefore not movable.
  std::map<std::string, std::unique_ptr<Entry>> entries_;
};

}  // namespace bwaver
