#include "store/index_archive.hpp"

#include <array>
#include <memory>
#include <stdexcept>
#include <utility>

#include "fmindex/bwt.hpp"
#include "io/byte_io.hpp"
#include "io/checksum.hpp"

namespace bwaver {

namespace {

constexpr std::uint32_t kArchiveMagic = 0x41565742;  // "BWVA" little-endian

constexpr const char* kSectionMeta = "meta";
constexpr const char* kSectionBwt = "bwt";
constexpr const char* kSectionOcc = "occ";
constexpr const char* kSectionSa = "sa";
constexpr const char* kSectionKmer = "kmer";  // optional, v2+

std::array<std::uint32_t, 4> c_table_of(const Bwt& bwt) {
  std::array<std::uint32_t, 4> counts{};
  for (std::uint8_t c : bwt.symbols) ++counts[c];
  std::array<std::uint32_t, 4> c_table{};
  std::uint32_t sum = 1;  // the sentinel precedes every base
  for (unsigned c = 0; c < 4; ++c) {
    c_table[c] = sum;
    sum += counts[c];
  }
  return c_table;
}

struct ParsedHeader {
  std::uint32_t version = 0;
  std::vector<ArchiveSection> sections;
};

/// Parses and validates the header, the header CRC, the section bounds and
/// every section payload CRC.
ParsedHeader parse_header(std::span<const std::uint8_t> file, const std::string& path) {
  ByteReader reader(file);
  if (reader.u32() != kArchiveMagic) {
    throw IoError("index archive: bad magic: " + path);
  }
  ParsedHeader header;
  header.version = reader.u32();
  if (header.version < kArchiveVersionMin || header.version > kArchiveVersionLatest) {
    throw IoError("index archive: unsupported version " +
                  std::to_string(header.version) + " (expected " +
                  std::to_string(kArchiveVersionMin) + ".." +
                  std::to_string(kArchiveVersionLatest) + "): " + path);
  }
  const std::uint32_t section_count = reader.u32();
  if (section_count == 0 || section_count > 64) {
    throw IoError("index archive: implausible section count: " + path);
  }
  for (std::uint32_t i = 0; i < section_count; ++i) {
    ArchiveSection section;
    section.name = reader.str();
    section.offset = reader.u64();
    section.length = reader.u64();
    section.crc32 = reader.u32();
    header.sections.push_back(std::move(section));
  }
  const std::size_t header_bytes = file.size() - reader.remaining();
  const std::uint32_t stored_header_crc = reader.u32();
  if (crc32_ieee(file.subspan(0, header_bytes)) != stored_header_crc) {
    throw IoError("index archive: header checksum mismatch: " + path);
  }
  for (const ArchiveSection& section : header.sections) {
    if (section.offset > file.size() || section.length > file.size() - section.offset) {
      throw IoError("index archive: truncated section '" + section.name +
                    "': " + path);
    }
    if (crc32_ieee(file.subspan(section.offset, section.length)) != section.crc32) {
      throw IoError("index archive: section '" + section.name +
                    "' checksum mismatch: " + path);
    }
  }
  return header;
}

const ArchiveSection* find_section_entry(const ParsedHeader& header,
                                         const std::string& name) {
  for (const ArchiveSection& section : header.sections) {
    if (section.name == name) return &section;
  }
  return nullptr;
}

std::span<const std::uint8_t> find_section(std::span<const std::uint8_t> file,
                                           const ParsedHeader& header,
                                           const std::string& name,
                                           const std::string& path) {
  for (const ArchiveSection& section : header.sections) {
    if (section.name == name) return file.subspan(section.offset, section.length);
  }
  throw IoError("index archive: missing section '" + name + "': " + path);
}

struct MetaSection {
  std::vector<ReferenceSet::Sequence> sequences;
  std::uint32_t text_length = 0;
  std::array<std::uint32_t, 4> c_table{};
};

MetaSection parse_meta(std::span<const std::uint8_t> payload, const std::string& path) {
  ByteReader reader(payload);
  MetaSection meta;
  const std::uint64_t count = reader.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    ReferenceSet::Sequence seq;
    seq.name = reader.str();
    seq.offset = reader.u32();
    seq.length = reader.u32();
    meta.sequences.push_back(std::move(seq));
  }
  meta.text_length = reader.u32();
  for (auto& c : meta.c_table) c = reader.u32();
  if (!reader.done()) {
    throw IoError("index archive: trailing bytes in meta section: " + path);
  }
  return meta;
}

}  // namespace

std::size_t stored_index_bytes(const StoredIndex& stored) {
  const KmerSeedTable* seeds = stored.index.seed_table();
  return stored.reference.total_length() + stored.index.bwt().symbols.size() +
         stored.index.suffix_array().size() * sizeof(std::uint32_t) +
         stored.index.occ_size_in_bytes() +
         (seeds ? seeds->size_in_bytes() : 0);
}

void write_index_archive(const std::string& path, const ReferenceSet& reference,
                         const FmIndex<RrrWaveletOcc>& index,
                         std::uint32_t format_version) {
  if (format_version < kArchiveVersionMin || format_version > kArchiveVersionLatest) {
    throw std::invalid_argument("write_index_archive: unsupported format version " +
                                std::to_string(format_version));
  }
  const Bwt& bwt = index.bwt();

  ByteWriter meta;
  meta.u64(reference.num_sequences());
  for (const auto& seq : reference.sequences()) {
    meta.str(seq.name);
    meta.u32(seq.offset);
    meta.u32(seq.length);
  }
  meta.u32(bwt.text_length);
  for (const std::uint32_t c : c_table_of(bwt)) meta.u32(c);

  ByteWriter bwt_section;
  bwt_section.u32(bwt.text_length);
  bwt_section.u32(bwt.primary);
  bwt_section.vec_u8(bwt.symbols);

  ByteWriter occ_section;
  index.occ_backend().save(occ_section);

  ByteWriter sa_section;
  sa_section.vec_u32(index.suffix_array());

  std::vector<std::pair<const char*, const std::vector<std::uint8_t>*>> sections = {
      {kSectionMeta, &meta.data()},
      {kSectionBwt, &bwt_section.data()},
      {kSectionOcc, &occ_section.data()},
      {kSectionSa, &sa_section.data()},
  };

  // v2+: the seed table rides along as its own checksummed section so old
  // archives stay loadable and the table stays skippable.
  ByteWriter kmer_section;
  if (format_version >= 2 && index.seed_table() != nullptr) {
    index.seed_table()->save(kmer_section);
    sections.emplace_back(kSectionKmer, &kmer_section.data());
  }

  // The header size is known up front (str = u64 length prefix + bytes), so
  // absolute payload offsets can be written in one pass.
  std::size_t header_bytes = 3 * sizeof(std::uint32_t);
  for (const auto& [name, payload] : sections) {
    header_bytes += 8 + std::string(name).size() + 8 + 8 + 4;
  }
  const std::size_t payload_start = header_bytes + sizeof(std::uint32_t);  // + header CRC

  ByteWriter writer;
  writer.u32(kArchiveMagic);
  writer.u32(format_version);
  writer.u32(static_cast<std::uint32_t>(sections.size()));
  std::uint64_t offset = payload_start;
  for (const auto& [name, payload] : sections) {
    writer.str(name);
    writer.u64(offset);
    writer.u64(payload->size());
    writer.u32(crc32_ieee(*payload));
    offset += payload->size();
  }
  writer.u32(crc32_ieee(writer.data()));
  for (const auto& [name, payload] : sections) {
    writer.bytes(*payload);
  }
  write_file(path, writer.data());
}

StoredIndex read_index_archive(const std::string& path) {
  const auto file = read_file(path);
  const ParsedHeader header = parse_header(file, path);
  const MetaSection meta = parse_meta(find_section(file, header, kSectionMeta, path), path);

  Bwt bwt;
  {
    ByteReader reader(find_section(file, header, kSectionBwt, path));
    bwt.text_length = reader.u32();
    bwt.primary = reader.u32();
    bwt.symbols = reader.vec_u8();
    if (!reader.done()) {
      throw IoError("index archive: trailing bytes in bwt section: " + path);
    }
  }
  if (bwt.symbols.size() != bwt.text_length || bwt.text_length != meta.text_length ||
      bwt.primary > bwt.text_length) {
    throw IoError("index archive: inconsistent BWT metadata: " + path);
  }

  RrrWaveletOcc occ;
  {
    ByteReader reader(find_section(file, header, kSectionOcc, path));
    occ = RrrWaveletOcc::load(reader);
    if (!reader.done()) {
      throw IoError("index archive: trailing bytes in occ section: " + path);
    }
  }

  std::vector<std::uint32_t> sa;
  {
    ByteReader reader(find_section(file, header, kSectionSa, path));
    sa = reader.vec_u32();
    if (!reader.done()) {
      throw IoError("index archive: trailing bytes in sa section: " + path);
    }
  }
  if (sa.size() != static_cast<std::size_t>(bwt.text_length) + 1) {
    throw IoError("index archive: SA/BWT size mismatch: " + path);
  }
  if (occ.size() != bwt.symbols.size()) {
    throw IoError("index archive: Occ/BWT size mismatch: " + path);
  }
  if (c_table_of(bwt) != meta.c_table) {
    throw IoError("index archive: C table does not match BWT: " + path);
  }

  // The reference text is recovered from the BWT; the meta section's
  // sequence table carves it back into named sequences.
  const auto text = inverse_bwt(bwt);
  ReferenceSet reference;
  for (const auto& seq : meta.sequences) {
    if (static_cast<std::size_t>(seq.offset) + seq.length > text.size()) {
      throw IoError("index archive: sequence table out of range: " + path);
    }
    reference.add(seq.name,
                  std::span<const std::uint8_t>(text.data() + seq.offset, seq.length));
  }
  if (reference.total_length() != text.size()) {
    throw IoError("index archive: sequence table does not cover text: " + path);
  }

  std::shared_ptr<const KmerSeedTable> seeds;
  if (const ArchiveSection* entry = find_section_entry(header, kSectionKmer)) {
    ByteReader reader(
        std::span<const std::uint8_t>(file).subspan(entry->offset, entry->length));
    auto table = KmerSeedTable::load(reader);
    if (!reader.done()) {
      throw IoError("index archive: trailing bytes in kmer section: " + path);
    }
    seeds = std::make_shared<const KmerSeedTable>(std::move(table));
  }

  StoredIndex stored{std::move(reference),
                     FmIndex<RrrWaveletOcc>(std::move(bwt), std::move(sa), std::move(occ))};
  stored.index.set_seed_table(std::move(seeds));
  return stored;
}

ArchiveInfo read_index_archive_info(const std::string& path) {
  const auto file = read_file(path);
  const ParsedHeader header = parse_header(file, path);
  const MetaSection meta = parse_meta(find_section(file, header, kSectionMeta, path), path);
  ArchiveInfo info;
  info.version = header.version;
  info.file_bytes = file.size();
  info.sections = header.sections;
  info.sequences = meta.sequences;
  info.text_length = meta.text_length;
  return info;
}

}  // namespace bwaver
