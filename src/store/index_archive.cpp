#include "store/index_archive.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <utility>

#include "fmindex/bwt.hpp"
#include "io/byte_io.hpp"
#include "io/checksum.hpp"

namespace bwaver {

namespace {

constexpr std::uint32_t kArchiveMagic = 0x41565742;  // "BWVA" little-endian

struct ParsedHeader {
  std::uint32_t version = 0;
  std::vector<ArchiveSection> sections;
};

/// Parses and validates the header fields, the header CRC and the section
/// bounds against `file_size` — without touching any section payload, so it
/// works on a small prefix of a multi-gigabyte archive.
ParsedHeader parse_header_fields(std::span<const std::uint8_t> prefix,
                                 std::uint64_t file_size, const std::string& path) {
  ByteReader reader(prefix);
  if (reader.u32() != kArchiveMagic) {
    throw IoError("index archive: bad magic: " + path);
  }
  ParsedHeader header;
  header.version = reader.u32();
  if (header.version < kArchiveVersionMin || header.version > kArchiveVersionLatest) {
    throw IoError("index archive: unsupported version " +
                  std::to_string(header.version) + " (expected " +
                  std::to_string(kArchiveVersionMin) + ".." +
                  std::to_string(kArchiveVersionLatest) + "): " + path);
  }
  const std::uint32_t section_count = reader.u32();
  if (section_count == 0 || section_count > 64) {
    throw IoError("index archive: implausible section count: " + path);
  }
  for (std::uint32_t i = 0; i < section_count; ++i) {
    ArchiveSection section;
    section.name = reader.str();
    section.offset = reader.u64();
    section.length = reader.u64();
    section.crc32 = reader.u32();
    header.sections.push_back(std::move(section));
  }
  const std::size_t header_bytes = prefix.size() - reader.remaining();
  const std::uint32_t stored_header_crc = reader.u32();
  if (crc32_ieee(prefix.subspan(0, header_bytes)) != stored_header_crc) {
    throw IoError("index archive: header checksum mismatch: " + path);
  }
  for (const ArchiveSection& section : header.sections) {
    if (section.offset > file_size || section.length > file_size - section.offset) {
      throw IoError("index archive: truncated section '" + section.name +
                    "': " + path);
    }
  }
  return header;
}

/// Parses and validates the header, the header CRC, the section bounds and
/// every section payload CRC.
ParsedHeader parse_header(std::span<const std::uint8_t> file, const std::string& path) {
  ParsedHeader header = parse_header_fields(file, file.size(), path);
  for (const ArchiveSection& section : header.sections) {
    if (crc32_ieee(file.subspan(section.offset, section.length)) != section.crc32) {
      throw IoError("index archive: section '" + section.name +
                    "' checksum mismatch: " + path);
    }
  }
  return header;
}

const ArchiveSection* find_section_entry(const ParsedHeader& header,
                                         const std::string& name) {
  for (const ArchiveSection& section : header.sections) {
    if (section.name == name) return &section;
  }
  return nullptr;
}

/// A reader over one section's payload, carrying the section name and its
/// absolute file offset so truncation/misalignment errors point at the spot.
ByteReader section_reader(std::span<const std::uint8_t> file,
                          const ParsedHeader& header, const std::string& name,
                          const std::string& path) {
  const ArchiveSection* entry = find_section_entry(header, name);
  if (entry == nullptr) {
    throw IoError("index archive: missing section '" + name + "': " + path);
  }
  return ByteReader(file.subspan(entry->offset, entry->length), name,
                    entry->offset);
}

struct MetaSection {
  std::vector<ReferenceSet::Sequence> sequences;
  std::uint32_t text_length = 0;
  std::array<std::uint32_t, 4> c_table{};
};

MetaSection parse_meta(ByteReader reader, const std::string& path) {
  MetaSection meta;
  meta.sequences = ReferenceSet::load_table(reader);
  meta.text_length = reader.u32();
  for (auto& c : meta.c_table) c = reader.u32();
  if (!reader.done()) {
    throw IoError("index archive: trailing bytes in meta section: " + path);
  }
  return meta;
}

/// v1/v2: element-wise deserialization onto the heap, reference text
/// recovered from the BWT.
StoredIndex load_v1v2(std::span<const std::uint8_t> file,
                      const ParsedHeader& header, const std::string& path) {
  const MetaSection meta =
      parse_meta(section_reader(file, header, kSectionMeta, path), path);

  Bwt bwt;
  {
    ByteReader reader = section_reader(file, header, kSectionBwt, path);
    bwt.text_length = reader.u32();
    bwt.primary = reader.u32();
    bwt.symbols = reader.vec_u8();
    if (!reader.done()) {
      throw IoError("index archive: trailing bytes in bwt section: " + path);
    }
  }
  if (bwt.symbols.size() != bwt.text_length || bwt.text_length != meta.text_length ||
      bwt.primary > bwt.text_length) {
    throw IoError("index archive: inconsistent BWT metadata: " + path);
  }

  RrrWaveletOcc occ;
  {
    ByteReader reader = section_reader(file, header, kSectionOcc, path);
    occ = RrrWaveletOcc::load(reader);
    if (!reader.done()) {
      throw IoError("index archive: trailing bytes in occ section: " + path);
    }
  }

  std::vector<std::uint32_t> sa;
  {
    ByteReader reader = section_reader(file, header, kSectionSa, path);
    sa = reader.vec_u32();
    if (!reader.done()) {
      throw IoError("index archive: trailing bytes in sa section: " + path);
    }
  }
  if (sa.size() != static_cast<std::size_t>(bwt.text_length) + 1) {
    throw IoError("index archive: SA/BWT size mismatch: " + path);
  }
  if (occ.size() != bwt.symbols.size()) {
    throw IoError("index archive: Occ/BWT size mismatch: " + path);
  }
  if (c_table_of(bwt) != meta.c_table) {
    throw IoError("index archive: C table does not match BWT: " + path);
  }

  // The reference text is recovered from the BWT; the meta section's
  // sequence table carves it back into named sequences.
  const auto text = inverse_bwt(bwt);
  ReferenceSet reference;
  for (const auto& seq : meta.sequences) {
    if (static_cast<std::size_t>(seq.offset) + seq.length > text.size()) {
      throw IoError("index archive: sequence table out of range: " + path);
    }
    reference.add(seq.name,
                  std::span<const std::uint8_t>(text.data() + seq.offset, seq.length));
  }
  if (reference.total_length() != text.size()) {
    throw IoError("index archive: sequence table does not cover text: " + path);
  }

  std::shared_ptr<const KmerSeedTable> seeds;
  if (find_section_entry(header, kSectionKmer) != nullptr) {
    ByteReader reader = section_reader(file, header, kSectionKmer, path);
    auto table = KmerSeedTable::load(reader);
    if (!reader.done()) {
      throw IoError("index archive: trailing bytes in kmer section: " + path);
    }
    seeds = std::make_shared<const KmerSeedTable>(std::move(table));
  }

  StoredIndex stored{std::move(reference),
                     FmIndex<RrrWaveletOcc>(std::move(bwt), std::move(sa), std::move(occ)),
                     nullptr, nullptr, LoadMode::kCopy};
  stored.index.set_seed_table(std::move(seeds));
  return stored;
}

/// Reads one flat u8 array (count, pad, raw bytes); adopts or copies.
FlatArray<std::uint8_t> read_flat_u8(ByteReader& reader, bool adopt) {
  const std::uint64_t count = reader.u64();
  reader.align_to(kSectionAlign);
  const auto bytes = reader.span_u8(count);
  if (adopt) return FlatArray<std::uint8_t>::view_of(bytes);
  return FlatArray<std::uint8_t>(
      std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
}

/// v3: flat 64-byte-aligned payloads; adopt=true borrows every bulk array
/// from `file` (which the caller keeps mapped), adopt=false copies them.
StoredIndex load_v3(std::span<const std::uint8_t> file,
                    const ParsedHeader& header, const std::string& path,
                    bool adopt) {
  const MetaSection meta =
      parse_meta(section_reader(file, header, kSectionMeta, path), path);

  FlatArray<std::uint8_t> text;
  {
    ByteReader reader = section_reader(file, header, kSectionText, path);
    text = read_flat_u8(reader, adopt);
    if (!reader.done()) {
      throw IoError("index archive: trailing bytes in text section: " + path);
    }
  }
  if (text.size() != meta.text_length) {
    throw IoError("index archive: text/meta size mismatch: " + path);
  }
  // from_parts revalidates that the sequence table tiles the text.
  ReferenceSet reference =
      ReferenceSet::from_parts(meta.sequences, std::move(text));

  Bwt bwt;
  {
    ByteReader reader = section_reader(file, header, kSectionBwt, path);
    bwt.text_length = reader.u32();
    bwt.primary = reader.u32();
    bwt.symbols = read_flat_u8(reader, adopt);
    if (!reader.done()) {
      throw IoError("index archive: trailing bytes in bwt section: " + path);
    }
  }
  if (bwt.symbols.size() != bwt.text_length || bwt.text_length != meta.text_length ||
      bwt.primary > bwt.text_length) {
    throw IoError("index archive: inconsistent BWT metadata: " + path);
  }

  RrrWaveletOcc occ;
  {
    ByteReader reader = section_reader(file, header, kSectionOcc, path);
    occ = RrrWaveletOcc::load_flat(reader, adopt);
    if (!reader.done()) {
      throw IoError("index archive: trailing bytes in occ section: " + path);
    }
  }

  FlatArray<std::uint32_t> sa;
  {
    ByteReader reader = section_reader(file, header, kSectionSa, path);
    const std::uint64_t count = reader.u64();
    reader.align_to(kSectionAlign);
    const auto rows = reader.span_u32(count);
    if (adopt) {
      sa = FlatArray<std::uint32_t>::view_of(rows);
    } else {
      sa = std::vector<std::uint32_t>(rows.begin(), rows.end());
    }
    if (!reader.done()) {
      throw IoError("index archive: trailing bytes in sa section: " + path);
    }
  }
  if (sa.size() != static_cast<std::size_t>(bwt.text_length) + 1) {
    throw IoError("index archive: SA/BWT size mismatch: " + path);
  }
  if (occ.size() != bwt.symbols.size()) {
    throw IoError("index archive: Occ/BWT size mismatch: " + path);
  }

  std::shared_ptr<const KmerSeedTable> seeds;
  if (find_section_entry(header, kSectionKmer) != nullptr) {
    ByteReader reader = section_reader(file, header, kSectionKmer, path);
    auto table = KmerSeedTable::load_flat(reader, adopt);
    if (!reader.done()) {
      throw IoError("index archive: trailing bytes in kmer section: " + path);
    }
    seeds = std::make_shared<const KmerSeedTable>(std::move(table));
  }

  std::shared_ptr<const EprOcc> epr;
  if (find_section_entry(header, kSectionEpr) != nullptr) {
    ByteReader reader = section_reader(file, header, kSectionEpr, path);
    auto dict = EprOcc::load_flat(reader, adopt);
    if (!reader.done()) {
      throw IoError("index archive: trailing bytes in epr section: " + path);
    }
    if (dict.size() != bwt.symbols.size()) {
      throw IoError("index archive: EPR/BWT size mismatch: " + path);
    }
    epr = std::make_shared<const EprOcc>(std::move(dict));
  }

  // The C table comes from the checksummed meta section; the four-arg
  // constructor validates plausibility without rescanning the BWT.
  StoredIndex stored{std::move(reference),
                     FmIndex<RrrWaveletOcc>(std::move(bwt), std::move(sa),
                                            std::move(occ), meta.c_table),
                     std::move(epr), nullptr, LoadMode::kCopy};
  stored.index.set_seed_table(std::move(seeds));
  return stored;
}

}  // namespace

LoadMode default_load_mode() {
  if (const char* env = std::getenv("BWAVER_LOAD_MODE")) {
    if (const auto mode = parse_load_mode(env)) return *mode;
  }
  return LoadMode::kCopy;
}

std::optional<LoadMode> parse_load_mode(std::string_view name) {
  if (name == "mmap") return LoadMode::kMmap;
  if (name == "copy") return LoadMode::kCopy;
  return std::nullopt;
}

const char* load_mode_name(LoadMode mode) {
  return mode == LoadMode::kMmap ? "mmap" : "copy";
}

IndexFootprint stored_index_footprint(const StoredIndex& stored) {
  const KmerSeedTable* seeds = stored.index.seed_table();
  const auto mapped_part = [](std::size_t payload, std::size_t heap) {
    return payload > heap ? payload - heap : std::size_t{0};
  };
  IndexFootprint footprint;
  const std::size_t total =
      stored.reference.total_length() + stored.index.bwt().symbols.size() +
      stored.index.suffix_array().size() * sizeof(std::uint32_t) +
      stored.index.occ_size_in_bytes() +
      (seeds ? seeds->size_in_bytes() : 0) +
      (stored.epr ? stored.epr->size_in_bytes() : 0);
  footprint.mapped_bytes =
      mapped_part(stored.reference.concatenated().bytes(),
                  stored.reference.concatenated().heap_bytes()) +
      mapped_part(stored.index.bwt().symbols.bytes(),
                  stored.index.bwt().symbols.heap_bytes()) +
      mapped_part(stored.index.suffix_array().bytes(),
                  stored.index.suffix_array().heap_bytes()) +
      mapped_part(stored.index.occ_backend().size_in_bytes(),
                  stored.index.occ_backend().heap_size_in_bytes()) +
      (seeds ? mapped_part(seeds->size_in_bytes(), seeds->heap_size_in_bytes())
             : 0) +
      (stored.epr ? mapped_part(stored.epr->size_in_bytes(),
                                stored.epr->heap_size_in_bytes())
                  : 0);
  footprint.heap_bytes = total - footprint.mapped_bytes;
  return footprint;
}

std::size_t stored_index_bytes(const StoredIndex& stored) {
  return stored_index_footprint(stored).total();
}

std::uint64_t archive_payload_start(std::span<const ArchiveSectionPlan> sections) {
  std::uint64_t header_bytes = 3 * sizeof(std::uint32_t);
  for (const ArchiveSectionPlan& section : sections) {
    header_bytes += 8 + section.name.size() + 8 + 8 + 4;
  }
  return header_bytes + sizeof(std::uint32_t);  // + header CRC
}

std::vector<std::uint8_t> render_archive_header(std::uint32_t format_version,
                                                std::span<const ArchiveSectionPlan> sections) {
  const bool flat = format_version >= 3;
  ByteWriter writer;
  writer.u32(kArchiveMagic);
  writer.u32(format_version);
  writer.u32(static_cast<std::uint32_t>(sections.size()));
  std::uint64_t offset = archive_payload_start(sections);
  for (const ArchiveSectionPlan& section : sections) {
    if (flat) offset = (offset + kSectionAlign - 1) & ~(kSectionAlign - 1);
    writer.str(section.name);
    writer.u64(offset);
    writer.u64(section.length);
    writer.u32(section.crc32);
    offset += section.length;
  }
  writer.u32(crc32_ieee(writer.data()));
  return writer.take();
}

void save_build_provenance(ByteWriter& writer, const BuildProvenance& provenance) {
  writer.str(provenance.builder);
  writer.u64(provenance.block_bases);
  writer.u64(provenance.merge_passes);
  writer.u64(provenance.memory_budget_bytes);
}

void write_index_archive(const std::string& path, const ReferenceSet& reference,
                         const FmIndex<RrrWaveletOcc>& index,
                         std::uint32_t format_version, const BuildProvenance* provenance) {
  if (format_version < kArchiveVersionMin || format_version > kArchiveVersionLatest) {
    throw std::invalid_argument("write_index_archive: unsupported format version " +
                                std::to_string(format_version));
  }
  const Bwt& bwt = index.bwt();
  const bool flat = format_version >= 3;

  ByteWriter meta;
  reference.save_table(meta);
  meta.u32(bwt.text_length);
  for (const std::uint32_t c : c_table_of(bwt)) meta.u32(c);

  ByteWriter text_section;
  if (flat) {
    text_section.u64(reference.total_length());
    text_section.pad_to(kSectionAlign);
    text_section.raw_u8(reference.concatenated());
  }

  ByteWriter bwt_section;
  bwt_section.u32(bwt.text_length);
  bwt_section.u32(bwt.primary);
  if (flat) {
    bwt_section.u64(bwt.symbols.size());
    bwt_section.pad_to(kSectionAlign);
    bwt_section.raw_u8(bwt.symbols);
  } else {
    bwt_section.vec_u8(bwt.symbols);
  }

  ByteWriter occ_section;
  if (flat) {
    index.occ_backend().save_flat(occ_section);
  } else {
    index.occ_backend().save(occ_section);
  }

  ByteWriter sa_section;
  if (flat) {
    sa_section.u64(index.suffix_array().size());
    sa_section.pad_to(kSectionAlign);
    sa_section.raw_u32(index.suffix_array());
  } else {
    sa_section.vec_u32(index.suffix_array());
  }

  std::vector<std::pair<const char*, const std::vector<std::uint8_t>*>> sections;
  sections.emplace_back(kSectionMeta, &meta.data());
  if (flat) sections.emplace_back(kSectionText, &text_section.data());
  sections.emplace_back(kSectionBwt, &bwt_section.data());
  sections.emplace_back(kSectionOcc, &occ_section.data());
  sections.emplace_back(kSectionSa, &sa_section.data());

  // v2+: the seed table rides along as its own checksummed section so old
  // archives stay loadable and the table stays skippable.
  ByteWriter kmer_section;
  if (format_version >= 2 && index.seed_table() != nullptr) {
    if (flat) {
      index.seed_table()->save_flat(kmer_section);
    } else {
      index.seed_table()->save(kmer_section);
    }
    sections.emplace_back(kSectionKmer, &kmer_section.data());
  }

  // v4+: the EPR dictionary, transposed from the BWT at write time so the
  // epr engine serves straight off the archive.
  ByteWriter epr_section;
  if (format_version >= 4) {
    EprOcc(bwt.symbols).save_flat(epr_section);
    sections.emplace_back(kSectionEpr, &epr_section.data());
  }

  ByteWriter build_section;
  if (flat && provenance != nullptr) {
    save_build_provenance(build_section, *provenance);
    sections.emplace_back(kSectionBuild, &build_section.data());
  }

  std::vector<ArchiveSectionPlan> plans;
  plans.reserve(sections.size());
  for (const auto& [name, payload] : sections) {
    plans.push_back({name, payload->size(), crc32_ieee(*payload)});
  }

  ByteWriter writer;
  writer.bytes(render_archive_header(format_version, plans));
  for (const auto& [name, payload] : sections) {
    if (flat) writer.pad_to(kSectionAlign);
    writer.bytes(*payload);
  }
  write_file_atomic(path, writer.data());
}

StoredIndex read_index_archive(const std::string& path, LoadMode mode) {
  auto file = std::make_shared<MappedFile>(path);
  // The CRC verification pass in parse_header touches every byte front to
  // back; tell the kernel so before switching to the serving access pattern.
  file->advise(MappedFile::Advice::kSequential);
  const auto bytes = file->bytes();
  const ParsedHeader header = parse_header(bytes, path);
  if (header.version >= 3) {
    const bool adopt = mode == LoadMode::kMmap;
    StoredIndex stored = load_v3(bytes, header, path, adopt);
    if (adopt) {
      file->advise(MappedFile::Advice::kRandom);
      stored.backing = std::move(file);
      stored.load_mode = LoadMode::kMmap;
    }
    return stored;
  }
  // v1/v2 have no zero-copy layout: always deserialize onto the heap.
  return load_v1v2(bytes, header, path);
}

StoredIndex read_index_archive(const std::string& path) {
  return read_index_archive(path, default_load_mode());
}

ArchiveInfo read_index_archive_info(const std::string& path) {
  // Deliberately NOT a whole-file read: `index info` and registry adoption
  // run against multi-gigabyte archives (and, for the blockwise builder,
  // inside a tight memory budget), so only the header and the two small
  // metadata sections are read and checksummed. Bulk payload CRCs are
  // verified when the archive is actually loaded.
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("read_file: cannot open " + path);
  in.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());

  const auto read_slice = [&](std::uint64_t offset,
                              std::size_t length) -> std::vector<std::uint8_t> {
    std::vector<std::uint8_t> bytes(length);
    in.seekg(static_cast<std::streamoff>(offset));
    if (length > 0 &&
        !in.read(reinterpret_cast<char*>(bytes.data()),
                 static_cast<std::streamsize>(length))) {
      throw IoError("read_file: short read from " + path);
    }
    return bytes;
  };

  // A 64-section table with names tops out well under a page; 64 KiB of
  // slack means a valid header always fits, and a header that runs off the
  // prefix fails the ByteReader bounds check exactly like a truncated file.
  const auto prefix = read_slice(
      0, static_cast<std::size_t>(std::min<std::uint64_t>(file_size, 64 * 1024)));
  const ParsedHeader header = parse_header_fields(prefix, file_size, path);

  const auto read_section = [&](const std::string& name) -> std::vector<std::uint8_t> {
    const ArchiveSection* entry = find_section_entry(header, name);
    if (entry == nullptr) {
      throw IoError("index archive: missing section '" + name + "': " + path);
    }
    auto payload = read_slice(entry->offset, static_cast<std::size_t>(entry->length));
    if (crc32_ieee(payload) != entry->crc32) {
      throw IoError("index archive: section '" + name + "' checksum mismatch: " + path);
    }
    return payload;
  };

  const auto meta_bytes = read_section(kSectionMeta);
  const ArchiveSection* meta_entry = find_section_entry(header, kSectionMeta);
  const MetaSection meta = parse_meta(
      ByteReader(meta_bytes, kSectionMeta, meta_entry->offset), path);
  ArchiveInfo info;
  info.version = header.version;
  info.file_bytes = file_size;
  info.sections = header.sections;
  info.sequences = meta.sequences;
  info.text_length = meta.text_length;
  if (const ArchiveSection* entry = find_section_entry(header, kSectionBuild)) {
    const auto build_bytes = read_section(kSectionBuild);
    ByteReader reader(build_bytes, kSectionBuild, entry->offset);
    BuildProvenance provenance;
    provenance.builder = reader.str();
    provenance.block_bases = reader.u64();
    provenance.merge_passes = reader.u64();
    provenance.memory_budget_bytes = reader.u64();
    if (!reader.done()) {
      throw IoError("index archive: trailing bytes in build section: " + path);
    }
    info.build = std::move(provenance);
  }
  return info;
}

}  // namespace bwaver
