// Versioned on-disk archive of one fully built BWaveR index.
//
// The paper's pipeline rebuilds BWT + SA + the succinct structure for every
// deployment; the archive makes the build-once/load-many split explicit: a
// reference is indexed once (`bwaver index build`, POST /reference) and the
// complete structure — reference metadata, C table, RRR-wavelet-tree Occ
// backend and the suffix array — is written as independently checksummed
// sections, so loading skips every construction step and corruption is
// detected before an index is served.
//
// Layout (all integers little-endian):
//
//   u32 magic   "BWVA"
//   u32 version (currently 2; v1 archives still load)
//   u32 section_count
//   section table, section_count entries:
//     str name | u64 file offset | u64 length | u32 crc32 (IEEE, of payload)
//   u32 crc32 of every header byte above
//   section payloads, in table order
//
// v1 sections, each a self-contained ByteWriter stream:
//   "meta" — sequence table (name/offset/length per sequence), text length,
//            and the 4-entry C table (validated against the loaded BWT);
//   "bwt"  — text_length, primary row, squeezed BWT symbols;
//   "occ"  — the serialized RrrWaveletOcc (params + wavelet tree of RRR);
//   "sa"   — the (n+1)-entry suffix array.
//
// v2 adds one OPTIONAL section:
//   "kmer" — the serialized KmerSeedTable (seed length k plus 4^k SA
//            intervals). Absent when the index was built with seeding
//            disabled; v1 archives (no such section) load with searches
//            falling back to the classic recurrence.
//
// The reference text itself is not stored: it is recovered from the BWT on
// load, exactly like the step-1 index file. Any truncation, bad magic,
// unknown version, or checksum mismatch raises IoError.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fmindex/fm_index.hpp"
#include "fmindex/occ_backends.hpp"
#include "fmindex/reference_set.hpp"

namespace bwaver {

/// A complete loaded index: what the registry hands to concurrent readers.
struct StoredIndex {
  ReferenceSet reference;
  FmIndex<RrrWaveletOcc> index;
};

/// Approximate resident heap footprint of a loaded index (reference text +
/// BWT + SA + succinct structure) — the unit of the registry memory budget.
std::size_t stored_index_bytes(const StoredIndex& stored);

struct ArchiveSection {
  std::string name;
  std::uint64_t offset = 0;  ///< absolute file offset of the payload
  std::uint64_t length = 0;
  std::uint32_t crc32 = 0;
};

struct ArchiveInfo {
  std::uint32_t version = 0;
  std::uint64_t file_bytes = 0;
  std::vector<ArchiveSection> sections;
  std::vector<ReferenceSet::Sequence> sequences;  ///< from the meta section
  std::uint32_t text_length = 0;
};

/// Oldest archive format the loader still accepts (no "kmer" section).
inline constexpr std::uint32_t kArchiveVersionMin = 1;
/// Format written by write_index_archive.
inline constexpr std::uint32_t kArchiveVersionLatest = 2;

/// Serializes a built index to `path`. Takes components by reference:
/// FmIndex is move-only, and the writer only reads. `format_version` exists
/// for backward-compat tests: writing kArchiveVersionMin produces a v1
/// archive (the index's seed table, if any, is omitted).
void write_index_archive(const std::string& path, const ReferenceSet& reference,
                         const FmIndex<RrrWaveletOcc>& index,
                         std::uint32_t format_version = kArchiveVersionLatest);

/// Loads and fully validates an archive. Throws IoError on any truncation,
/// bad magic, version mismatch, checksum failure, or cross-section
/// inconsistency.
StoredIndex read_index_archive(const std::string& path);

/// Header + section table + meta section only (every section CRC is still
/// verified against the payload bytes) — the `index info` path.
ArchiveInfo read_index_archive_info(const std::string& path);

}  // namespace bwaver
