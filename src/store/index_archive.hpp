// Versioned on-disk archive of one fully built BWaveR index.
//
// The paper's pipeline rebuilds BWT + SA + the succinct structure for every
// deployment; the archive makes the build-once/load-many split explicit: a
// reference is indexed once (`bwaver index build`, POST /reference) and the
// complete structure — reference metadata, C table, RRR-wavelet-tree Occ
// backend and the suffix array — is written as independently checksummed
// sections, so loading skips every construction step and corruption is
// detected before an index is served.
//
// Layout (all integers little-endian):
//
//   u32 magic   "BWVA"
//   u32 version (currently 4; v1..v3 archives still load)
//   u32 section_count
//   section table, section_count entries:
//     str name | u64 file offset | u64 length | u32 crc32 (IEEE, of payload)
//   u32 crc32 of every header byte above
//   section payloads, in table order
//
// v1 sections, each a self-contained ByteWriter stream:
//   "meta" — sequence table (name/offset/length per sequence), text length,
//            and the 4-entry C table (validated against the loaded BWT);
//   "bwt"  — text_length, primary row, squeezed BWT symbols;
//   "occ"  — the serialized RrrWaveletOcc (params + wavelet tree of RRR);
//   "sa"   — the (n+1)-entry suffix array.
//
// v2 adds one OPTIONAL section:
//   "kmer" — the serialized KmerSeedTable (seed length k plus 4^k SA
//            intervals). Absent when the index was built with seeding
//            disabled; v1 archives (no such section) load with searches
//            falling back to the classic recurrence.
//
// v3 (zero-copy layout) keeps the same header but changes the payloads:
//
//   * every section's file offset is rounded up to 64 bytes (zero padding
//     between payloads; section CRCs cover payload bytes only);
//   * inside each section, every bulk array is written as `count` (or the
//     structure's scalars), zero padding to the next 64-byte boundary, then
//     the raw little-endian element words exactly as the in-memory
//     containers hold them — so with 64-aligned section offsets every array
//     is 64-byte aligned in the file and naturally aligned for its element
//     type;
//   * a new "text" section stores the concatenated 2-bit reference codes,
//     so loading skips the O(n) inverse-BWT reconstruction that v1/v2 pay.
//
// v4 adds one OPTIONAL flat section:
//   "epr"  — the bit-transposed EPR dictionary (EprOcc) over the same BWT,
//            so serving with --engine epr adopts the constant-time rank
//            structure straight from the file instead of re-transposing the
//            BWT at load. v3 archives (no such section) still load; the epr
//            engine then re-encodes transiently.
//
// A v3/v4 archive can therefore be loaded two ways (LoadMode):
//
//   kCopy — the flat arrays are copied into heap vectors (like v1/v2);
//   kMmap — the file is mapped read-only and every flat array is adopted
//           in place (FlatArray views); the map is retained by
//           StoredIndex::backing and unmapped when the index is dropped.
//
// Per-section CRCs are verified at open in BOTH modes, before anything is
// served. v1/v2 archives always load through the copy path. Any truncation,
// bad magic, unknown version, or checksum mismatch raises IoError.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fmindex/epr_occ.hpp"
#include "fmindex/fm_index.hpp"
#include "fmindex/occ_backends.hpp"
#include "fmindex/reference_set.hpp"
#include "io/byte_io.hpp"
#include "io/mapped_file.hpp"

namespace bwaver {

/// How read_index_archive materializes section payloads (v3 archives only;
/// older formats always deserialize element-wise onto the heap).
enum class LoadMode {
  kCopy,  ///< copy payloads into heap-owned containers
  kMmap,  ///< map the file read-only and adopt the flat arrays zero-copy
};

/// Process default: $BWAVER_LOAD_MODE ("mmap" or "copy"), else kCopy.
LoadMode default_load_mode();

/// "mmap"/"copy" -> LoadMode; nullopt for anything else (CLI parsing).
std::optional<LoadMode> parse_load_mode(std::string_view name);

/// Stable name for stats/logs.
const char* load_mode_name(LoadMode mode);

/// A complete loaded index: what the registry hands to concurrent readers.
struct StoredIndex {
  ReferenceSet reference;
  FmIndex<RrrWaveletOcc> index;
  /// The v4 "epr" section, when present: the EPR dictionary over the same
  /// BWT, served zero-copy (mmap loads alias the file). Null for v1..v3
  /// archives — the epr engine then re-encodes transiently.
  std::shared_ptr<const EprOcc> epr;
  /// Keeps the mapped archive alive while any structure views into it;
  /// null for heap-owned (copy/v1/v2) loads. Destroying the last reference
  /// unmaps the file.
  std::shared_ptr<const MappedFile> backing;
  /// Mode the index was actually loaded with (kCopy for v1/v2 archives
  /// regardless of the requested mode).
  LoadMode load_mode = LoadMode::kCopy;
};

/// Resident footprint of a loaded index, split by where the bytes live.
/// Mapped pages are clean and reclaimable by the OS, so budget accounting
/// weighs them differently from heap bytes (see IndexRegistry).
struct IndexFootprint {
  std::size_t heap_bytes = 0;    ///< private, unevictable allocations
  std::size_t mapped_bytes = 0;  ///< file-backed pages adopted zero-copy
  std::size_t total() const noexcept { return heap_bytes + mapped_bytes; }
};

IndexFootprint stored_index_footprint(const StoredIndex& stored);

/// Approximate resident footprint (heap + mapped) of a loaded index — the
/// historical single-number form; equals stored_index_footprint().total().
std::size_t stored_index_bytes(const StoredIndex& stored);

struct ArchiveSection {
  std::string name;
  std::uint64_t offset = 0;  ///< absolute file offset of the payload
  std::uint64_t length = 0;
  std::uint32_t crc32 = 0;
};

/// Builder provenance recorded in the OPTIONAL "build" section (opt-in:
/// archives with and without it differ byte-for-byte, and the blockwise
/// byte-identity guarantee is stated over archives written with the same
/// provenance setting). Loaders ignore unknown sections, so provenance-
/// carrying archives load under every reader since v3.
struct BuildProvenance {
  std::string builder;                    ///< "direct" or "blockwise"
  std::uint64_t block_bases = 0;          ///< blockwise block size (0 for direct)
  std::uint64_t merge_passes = 0;         ///< rank-interleave merges performed
  std::uint64_t memory_budget_bytes = 0;  ///< requested budget (0 = unbounded)
};

struct ArchiveInfo {
  std::uint32_t version = 0;
  std::uint64_t file_bytes = 0;
  std::vector<ArchiveSection> sections;
  std::vector<ReferenceSet::Sequence> sequences;  ///< from the meta section
  std::uint32_t text_length = 0;
  /// Present when the archive carries a "build" section.
  std::optional<BuildProvenance> build;
};

/// Oldest archive format the loader still accepts (no "kmer" section).
inline constexpr std::uint32_t kArchiveVersionMin = 1;
/// Format written by write_index_archive: flat 64-byte-aligned sections
/// plus the optional "epr" dictionary section.
inline constexpr std::uint32_t kArchiveVersionLatest = 4;

/// Canonical section names. The loader resolves sections by name and ignores
/// unknown ones, so writers may append new optional sections freely.
inline constexpr const char* kSectionMeta = "meta";
inline constexpr const char* kSectionText = "text";    // v3+: raw 2-bit codes
inline constexpr const char* kSectionBwt = "bwt";
inline constexpr const char* kSectionOcc = "occ";
inline constexpr const char* kSectionSa = "sa";
inline constexpr const char* kSectionKmer = "kmer";    // optional, v2+
inline constexpr const char* kSectionEpr = "epr";      // optional, v4+
inline constexpr const char* kSectionBuild = "build";  // optional provenance

/// v3+ sections start on 64-byte file offsets so the flat arrays inside
/// (themselves padded to 64 within the section) are absolutely aligned.
inline constexpr std::uint64_t kSectionAlign = 64;

/// One planned section for header rendering: its name plus the payload's
/// final byte length and CRC32 (IEEE, of the payload bytes only).
struct ArchiveSectionPlan {
  std::string name;
  std::uint64_t length = 0;
  std::uint32_t crc32 = 0;
};

/// Absolute file offset of the byte right after the header CRC for a header
/// naming these sections — where the first payload would start before any
/// section alignment. Depends only on the section names, so a streaming
/// writer can lay out payloads before their lengths and CRCs are known.
std::uint64_t archive_payload_start(std::span<const ArchiveSectionPlan> sections);

/// Renders the complete archive header (magic, version, section table with
/// 64-byte-aligned offsets for flat formats, header CRC). This is the single
/// header serialization shared by write_index_archive and the blockwise
/// ArchiveStreamWriter, so the two paths produce byte-identical files.
std::vector<std::uint8_t> render_archive_header(std::uint32_t format_version,
                                                std::span<const ArchiveSectionPlan> sections);

/// Serializes the "build" section payload (see BuildProvenance).
void save_build_provenance(ByteWriter& writer, const BuildProvenance& provenance);

/// Serializes a built index to `path` via a temp file + fsync + atomic
/// rename, so a crash mid-write never leaves a torn archive under the final
/// name. Takes components by reference: FmIndex is move-only, and the writer
/// only reads. `format_version` exists for backward-compat tests: writing
/// kArchiveVersionMin produces a v1 archive (the index's seed table, if any,
/// is omitted). A non-null `provenance` appends the optional "build" section
/// (v3+ only).
void write_index_archive(const std::string& path, const ReferenceSet& reference,
                         const FmIndex<RrrWaveletOcc>& index,
                         std::uint32_t format_version = kArchiveVersionLatest,
                         const BuildProvenance* provenance = nullptr);

/// Loads and fully validates an archive. Throws IoError on any truncation,
/// bad magic, version mismatch, checksum failure, or cross-section
/// inconsistency — in both load modes, before anything is served.
StoredIndex read_index_archive(const std::string& path, LoadMode mode);

/// Same, with the process default mode (see default_load_mode()).
StoredIndex read_index_archive(const std::string& path);

/// Header + section table + meta/build sections only — the `index info` and
/// registry-adoption path. Reads O(header) bytes regardless of archive size:
/// the header CRC, the section bounds and the CRCs of the sections it parses
/// are verified; bulk payload CRCs are checked when the archive is loaded.
ArchiveInfo read_index_archive_info(const std::string& path);

}  // namespace bwaver
