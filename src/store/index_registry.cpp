#include "store/index_registry.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "io/byte_io.hpp"

namespace bwaver {

namespace {

constexpr const char* kManifestName = "manifest.tsv";

bool valid_reference_name(const std::string& name) {
  if (name.empty() || name.size() > 256) return false;
  for (const char c : name) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '/' || c == '\0') {
      return false;
    }
  }
  return true;
}

}  // namespace

IndexRegistry::IndexRegistry(std::string store_dir, std::size_t memory_budget_bytes,
                             LoadMode load_mode)
    : store_dir_(std::move(store_dir)),
      memory_budget_(memory_budget_bytes),
      load_mode_(load_mode) {
  if (!store_dir_.empty()) {
    std::filesystem::create_directories(store_dir_);
    load_manifest();
  }
}

void IndexRegistry::load_manifest() {
  const auto manifest_path = std::filesystem::path(store_dir_) / kManifestName;
  std::ifstream manifest(manifest_path);
  if (!manifest) return;  // fresh store directory
  std::string line;
  while (std::getline(manifest, line)) {
    if (line.empty() || line.front() == '#') continue;
    std::istringstream fields(line);
    std::string name, filename, bytes_str, generation_str;
    if (!std::getline(fields, name, '\t') || !std::getline(fields, filename, '\t') ||
        !std::getline(fields, bytes_str, '\t')) {
      throw IoError("IndexRegistry: malformed manifest line: " + line);
    }
    auto entry = std::make_unique<Entry>();
    entry->archive_path = (std::filesystem::path(store_dir_) / filename).string();
    entry->archive_bytes = std::stoull(bytes_str);
    // Optional 4th column (added with rollover support); older manifests
    // without it read as generation 1.
    if (std::getline(fields, generation_str, '\t') && !generation_str.empty()) {
      entry->generation = std::stoull(generation_str);
    }
    // Sequence table and text length come from the (cheap) archive header so
    // listings don't need the index resident.
    const ArchiveInfo info = read_index_archive_info(entry->archive_path);
    entry->text_length = info.text_length;
    entry->num_sequences = info.sequences.size();
    entries_[name] = std::move(entry);
  }
}

void IndexRegistry::save_manifest_locked() const {
  const auto manifest_path = std::filesystem::path(store_dir_) / kManifestName;
  std::ofstream manifest(manifest_path, std::ios::trunc);
  if (!manifest) {
    throw IoError("IndexRegistry: cannot write manifest: " + manifest_path.string());
  }
  manifest << "# BWaveR index store manifest: name\tarchive\tbytes\tgeneration\n";
  for (const auto& [name, entry] : entries_) {
    manifest << name << '\t'
             << std::filesystem::path(entry->archive_path).filename().string() << '\t'
             << entry->archive_bytes << '\t' << entry->generation << '\n';
  }
}

std::size_t IndexRegistry::resident_bytes_locked() const {
  std::size_t total = 0;
  for (const auto& [name, entry] : entries_) {
    total += entry->resident_bytes;
  }
  return total;
}

std::size_t IndexRegistry::charged_bytes_locked() const {
  std::size_t total = 0;
  for (const auto& [name, entry] : entries_) {
    total += entry->heap_bytes + entry->mapped_bytes / kMappedWeight;
  }
  return total;
}

void IndexRegistry::set_resident_locked(Entry& entry, Handle handle) {
  const IndexFootprint footprint = stored_index_footprint(*handle);
  entry.resident = std::move(handle);
  entry.resident_bytes = footprint.total();
  entry.heap_bytes = footprint.heap_bytes;
  entry.mapped_bytes = footprint.mapped_bytes;
  entry.text_length = entry.resident->reference.total_length();
  entry.num_sequences = entry.resident->reference.num_sequences();
}

void IndexRegistry::drop_resident_locked(Entry& entry) {
  // Dropping the registry handle releases the heap copy immediately (once
  // in-flight readers finish) and, for an mmap load, the last StoredIndex
  // handle also unmaps the archive via its `backing` MappedFile.
  entry.resident.reset();
  entry.resident_bytes = 0;
  entry.heap_bytes = 0;
  entry.mapped_bytes = 0;
}

void IndexRegistry::enforce_budget_locked(const std::string& keep) {
  while (charged_bytes_locked() > memory_budget_) {
    Entry* victim = nullptr;
    std::string victim_name;
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (const auto& [name, entry] : entries_) {
      if (!entry->resident || name == keep) continue;
      const std::uint64_t used = entry->last_used.load(std::memory_order_relaxed);
      if (used < oldest) {
        oldest = used;
        victim = entry.get();
        victim_name = name;
      }
    }
    if (victim == nullptr) break;  // only `keep` is resident; nothing to drop
    drop_resident_locked(*victim);
    evictions_budget_.fetch_add(1, std::memory_order_relaxed);
  }
}

IndexRegistry::Handle IndexRegistry::acquire(const std::string& name) {
  const std::uint64_t now = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    std::shared_lock lock(mutex_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      throw std::out_of_range("IndexRegistry: unknown reference '" + name + "'");
    }
    if (it->second->resident) {
      it->second->last_used.store(now, std::memory_order_relaxed);
      return it->second->resident;
    }
  }

  std::unique_lock lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::out_of_range("IndexRegistry: unknown reference '" + name + "'");
  }
  Entry& entry = *it->second;
  if (!entry.resident) {
    if (entry.archive_path.empty()) {
      // Memory-only entry whose resident copy was evicted: unrecoverable.
      throw std::out_of_range("IndexRegistry: reference '" + name +
                              "' was evicted and has no archive");
    }
    auto loaded = std::make_shared<const StoredIndex>(
        read_index_archive(entry.archive_path, load_mode_));
    auto& counter =
        loaded->load_mode == LoadMode::kMmap ? loads_mmap_ : loads_copy_;
    counter.fetch_add(1, std::memory_order_relaxed);
    set_resident_locked(entry, std::move(loaded));
  }
  entry.last_used.store(now, std::memory_order_relaxed);
  Handle handle = entry.resident;
  enforce_budget_locked(name);
  return handle;
}

IndexRegistry::Handle IndexRegistry::add(const std::string& name, StoredIndex stored) {
  if (!valid_reference_name(name)) {
    throw std::invalid_argument("IndexRegistry: invalid reference name '" + name + "'");
  }
  auto handle = std::make_shared<const StoredIndex>(std::move(stored));

  std::unique_lock lock(mutex_);
  auto& slot = entries_[name];
  const bool replacing = slot != nullptr;
  if (!slot) slot = std::make_unique<Entry>();
  Entry& entry = *slot;
  if (replacing) ++entry.generation;
  if (!store_dir_.empty()) {
    const auto archive =
        std::filesystem::path(store_dir_) / (name + ".bwva");
    write_index_archive(archive.string(), handle->reference, handle->index);
    // A previous rollover may have left the entry on a generation-named
    // archive; it is superseded now.
    if (!entry.archive_path.empty() && entry.archive_path != archive.string()) {
      std::error_code discard;
      std::filesystem::remove(entry.archive_path, discard);
    }
    entry.archive_path = archive.string();
    entry.archive_bytes = std::filesystem::file_size(archive);
  }
  set_resident_locked(entry, handle);
  entry.last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  if (!store_dir_.empty()) save_manifest_locked();
  enforce_budget_locked(name);
  return handle;
}

void IndexRegistry::adopt(const std::string& name, const std::string& archive_file) {
  if (!valid_reference_name(name)) {
    throw std::invalid_argument("IndexRegistry: invalid reference name '" + name + "'");
  }
  if (store_dir_.empty()) {
    throw std::logic_error(
        "IndexRegistry: adopt() requires a persistent store directory");
  }
  // Cheap validation: header structure plus every section CRC, without
  // materializing the index. Throws IoError on a corrupt/truncated file.
  const ArchiveInfo info = read_index_archive_info(archive_file);

  std::unique_lock lock(mutex_);
  auto& slot = entries_[name];
  const bool replacing = slot != nullptr;
  if (!slot) slot = std::make_unique<Entry>();
  Entry& entry = *slot;
  if (replacing) {
    ++entry.generation;
    // The adopted archive supersedes the resident copy; in-flight readers
    // drain via refcount exactly as in rollover().
    drop_resident_locked(entry);
  }
  const auto archive = std::filesystem::path(store_dir_) / (name + ".bwva");
  if (std::filesystem::path(archive_file) != archive) {
    std::filesystem::rename(archive_file, archive);
  }
  if (!entry.archive_path.empty() && entry.archive_path != archive.string()) {
    std::error_code discard;
    std::filesystem::remove(entry.archive_path, discard);
  }
  entry.archive_path = archive.string();
  entry.archive_bytes = std::filesystem::file_size(archive);
  entry.text_length = info.text_length;
  entry.num_sequences = info.sequences.size();
  entry.last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  save_manifest_locked();
}

IndexRegistry::Handle IndexRegistry::rollover(const std::string& name,
                                              StoredIndex stored) {
  // Stage 1 (no registry lock held — traffic keeps flowing): persist the
  // next generation beside the current one.
  std::uint64_t next_generation = 0;
  {
    std::shared_lock lock(mutex_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      throw std::out_of_range("IndexRegistry: cannot roll over unknown reference '" +
                              name + "'");
    }
    next_generation = it->second->generation + 1;
  }

  Handle handle;
  std::string new_archive;
  std::uint64_t new_archive_bytes = 0;
  if (!store_dir_.empty()) {
    const auto archive = std::filesystem::path(store_dir_) /
                         (name + ".g" + std::to_string(next_generation) + ".bwva");
    write_index_archive(archive.string(), stored.reference, stored.index);
    // Stage 2: validate by a full re-read through the normal load path.
    // The validated copy *is* the handle we flip to — a corrupt or
    // unwritable archive throws here, before the old generation is
    // touched, and the serving entry never sees it.
    try {
      handle = std::make_shared<const StoredIndex>(
          read_index_archive(archive.string(), load_mode_));
    } catch (...) {
      std::error_code discard;
      std::filesystem::remove(archive, discard);
      throw;
    }
    new_archive = archive.string();
    new_archive_bytes = std::filesystem::file_size(archive);
  } else {
    handle = std::make_shared<const StoredIndex>(std::move(stored));
  }

  // Stage 3: flip. In-flight readers keep their generation-N handle alive
  // via the shared_ptr refcount; new acquires see generation N+1.
  std::string old_archive;
  {
    std::unique_lock lock(mutex_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      throw std::out_of_range("IndexRegistry: reference '" + name +
                              "' removed during rollover");
    }
    Entry& entry = *it->second;
    old_archive = entry.archive_path;
    entry.generation = std::max(next_generation, entry.generation + 1);
    entry.archive_path = new_archive;
    entry.archive_bytes = new_archive_bytes;
    set_resident_locked(entry, handle);
    entry.last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                          std::memory_order_relaxed);
    if (!store_dir_.empty()) save_manifest_locked();
    enforce_budget_locked(name);
  }
  if (!old_archive.empty() && old_archive != new_archive) {
    // Old mmap readers keep the unlinked file alive through their open
    // mapping; the name disappears now, the blocks when they drain.
    std::error_code discard;
    std::filesystem::remove(old_archive, discard);
  }
  return handle;
}

std::uint64_t IndexRegistry::generation(const std::string& name) const {
  std::shared_lock lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::out_of_range("IndexRegistry: unknown reference '" + name + "'");
  }
  return it->second->generation;
}

bool IndexRegistry::evict(const std::string& name) {
  std::unique_lock lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || !it->second->resident) return false;
  drop_resident_locked(*it->second);
  evictions_explicit_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool IndexRegistry::contains(const std::string& name) const {
  std::shared_lock lock(mutex_);
  return entries_.count(name) != 0;
}

std::size_t IndexRegistry::size() const {
  std::shared_lock lock(mutex_);
  return entries_.size();
}

std::vector<RegistryEntry> IndexRegistry::list() const {
  std::shared_lock lock(mutex_);
  std::vector<RegistryEntry> entries;
  entries.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    RegistryEntry snapshot;
    snapshot.name = name;
    snapshot.archive_path = entry->archive_path;
    snapshot.archive_bytes = entry->archive_bytes;
    snapshot.resident = entry->resident != nullptr;
    snapshot.resident_bytes = entry->resident_bytes;
    snapshot.heap_bytes = entry->heap_bytes;
    snapshot.mapped_bytes = entry->mapped_bytes;
    snapshot.text_length = entry->text_length;
    snapshot.num_sequences = entry->num_sequences;
    snapshot.generation = entry->generation;
    entries.push_back(std::move(snapshot));
  }
  return entries;
}

std::size_t IndexRegistry::resident_bytes() const {
  std::shared_lock lock(mutex_);
  return resident_bytes_locked();
}

std::size_t IndexRegistry::heap_bytes() const {
  std::shared_lock lock(mutex_);
  std::size_t total = 0;
  for (const auto& [name, entry] : entries_) total += entry->heap_bytes;
  return total;
}

std::size_t IndexRegistry::mapped_bytes() const {
  std::shared_lock lock(mutex_);
  std::size_t total = 0;
  for (const auto& [name, entry] : entries_) total += entry->mapped_bytes;
  return total;
}

std::string IndexRegistry::archive_path(const std::string& name) const {
  std::shared_lock lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::out_of_range("IndexRegistry: unknown reference '" + name + "'");
  }
  return it->second->archive_path;
}

}  // namespace bwaver
