#include "kernels/vector_occ.hpp"

#include <algorithm>

namespace bwaver {

VectorOcc::VectorOcc(std::span<const std::uint8_t> bwt,
                     const kernels::RankKernel* kernel)
    : n_(bwt.size()), kernel_(kernel != nullptr ? kernel : &kernels::active_kernel()) {
  const std::size_t data_blocks = (n_ + kBasesPerBlock - 1) / kBasesPerBlock;
  blocks_.assign(data_blocks + 1, Block{});
  std::array<std::uint32_t, 4> running{};
  for (std::size_t b = 0; b < data_blocks; ++b) {
    Block& block = blocks_[b];
    block.cum = running;
    const std::size_t base = b * kBasesPerBlock;
    const std::size_t count = std::min<std::size_t>(kBasesPerBlock, n_ - base);
    for (std::size_t k = 0; k < count; ++k) {
      const std::uint8_t code = bwt[base + k] & 3;
      block.words[k >> 5] |= static_cast<std::uint64_t>(code) << ((k & 31) * 2);
      ++running[code];
    }
  }
  blocks_[data_blocks].cum = running;
}

std::size_t VectorOcc::rank(std::uint8_t c, std::size_t i) const noexcept {
  // Prefixes never reach into a block's zero padding: i <= n_ caps off at
  // the block's occupied bases, so padding can't be miscounted as code 0.
  const std::size_t b = i / kBasesPerBlock;
  const Block& block = blocks_[b];
  return block.cum[c] +
         kernel_->count_block_prefix(block.words.data(),
                                     static_cast<unsigned>(i % kBasesPerBlock), c);
}

std::pair<std::size_t, std::size_t> VectorOcc::rank2(std::uint8_t c, std::size_t i1,
                                                     std::size_t i2) const noexcept {
  const std::size_t r1 = rank(c, i1);
  if (i1 == i2) return {r1, r1};
  const std::size_t b1 = i1 / kBasesPerBlock;
  if (b1 != i2 / kBasesPerBlock) return {r1, rank(c, i2)};
  // Same block: the line is already hot, the second answer is one more
  // prefix count off the shared checkpoint.
  return {r1, blocks_[b1].cum[c] +
                  kernel_->count_block_prefix(
                      blocks_[b1].words.data(),
                      static_cast<unsigned>(i2 % kBasesPerBlock), c)};
}

void VectorOcc::rank2_bulk(std::span<const BulkQuery> queries,
                           std::pair<std::uint32_t, std::uint32_t>* out) const noexcept {
  // Lookahead deep enough to cover DRAM latency at one line per query pair,
  // short enough that prefetched lines survive in L1 until their scan.
  constexpr std::size_t kLookahead = 8;
  const std::size_t n = queries.size();
  for (std::size_t q = 0; q < n; ++q) {
    if (q + kLookahead < n) {
      const BulkQuery& ahead = queries[q + kLookahead];
      __builtin_prefetch(&blocks_[ahead.lo / kBasesPerBlock], 0, 1);
      __builtin_prefetch(&blocks_[ahead.hi / kBasesPerBlock], 0, 1);
    }
    const BulkQuery& query = queries[q];
    const auto [r_lo, r_hi] = rank2(query.c, query.lo, query.hi);
    out[q] = {static_cast<std::uint32_t>(r_lo), static_cast<std::uint32_t>(r_hi)};
  }
}

void VectorOcc::save(ByteWriter& writer) const {
  writer.u64(n_);
  for (const Block& block : blocks_) {
    for (std::uint32_t count : block.cum) writer.u32(count);
    for (std::uint64_t word : block.words) writer.u64(word);
  }
}

VectorOcc VectorOcc::load(ByteReader& reader) {
  VectorOcc occ;
  occ.n_ = reader.u64();
  occ.kernel_ = &kernels::active_kernel();
  const std::size_t data_blocks = (occ.n_ + kBasesPerBlock - 1) / kBasesPerBlock;
  occ.blocks_.resize(data_blocks + 1);
  for (Block& block : occ.blocks_) {
    for (std::uint32_t& count : block.cum) count = reader.u32();
    for (std::uint64_t& word : block.words) word = reader.u64();
  }
  return occ;
}

}  // namespace bwaver
