// The mapping-engine registry.
//
// Promotes the implicit software/FPGA split of the mapper into an
// enumerable registry: every engine — the modeled FPGA device and the four
// software Occ backends — carries a canonical name, the Occ structure it
// searches, and capability/size metadata. The CLI, the web service, the
// shared correctness testbed and the kernel bench all resolve engines
// through this one table, so adding a backend is a registry entry plus an
// Occ class, not a mapper change — the EPR dictionary ("epr") arrived
// exactly that way.
#pragma once

#include <optional>
#include <span>
#include <string_view>

namespace bwaver {

/// All mapping engines. The first three values predate the registry and
/// keep their order (kCpu = the paper's RRR software search, kBowtie2Like
/// = the sampled-occ baseline).
enum class MappingEngine {
  kFpga,          ///< modeled FPGA device over the RRR wavelet tree
  kCpu,           ///< software search, RrrWaveletOcc ("rrr")
  kBowtie2Like,   ///< software search, SampledOcc ("sampled")
  kPlainWavelet,  ///< software search, PlainWaveletOcc ("plain")
  kVector,        ///< software search, VectorOcc + SIMD kernels ("vector")
  kEpr,           ///< software search, EprOcc constant-time rank ("epr")
};

namespace kernels {

struct EngineSpec {
  MappingEngine engine;
  const char* name;         ///< canonical CLI/JSON name
  const char* alias;        ///< accepted legacy spelling (nullptr if none)
  const char* occ_backend;  ///< Occ class the engine searches
  const char* description;
  bool device_model;            ///< modeled hardware rather than host execution
  bool vectorized;              ///< ranks dispatch through the SIMD kernels
  double approx_bytes_per_base; ///< occ-structure size estimate (metadata only)
};

/// Every registered engine, in enum order.
std::span<const EngineSpec> engines();

/// The spec for one engine.
const EngineSpec& engine_spec(MappingEngine engine);

/// Canonical-name or alias lookup ("fpga", "rrr"/"cpu",
/// "sampled"/"bowtie2like", "plain", "vector"); nullopt for anything else.
std::optional<MappingEngine> parse_engine_name(std::string_view name);

/// Engine used when no --engine flag is given: $BWAVER_ENGINE if set to a
/// valid name, else the FPGA model (the paper's primary configuration).
MappingEngine default_engine();

/// The counting-kernel name a run of this engine dispatches to right now:
/// the active SIMD kernel for vectorized engines, "scalar" otherwise.
const char* engine_kernel_name(MappingEngine engine);

}  // namespace kernels
}  // namespace bwaver
