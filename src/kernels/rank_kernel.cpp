#include "kernels/rank_kernel.hpp"

#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#define BWAVER_KERNEL_X86 1
#include <immintrin.h>
#else
#define BWAVER_KERNEL_X86 0
#endif

#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace bwaver::kernels {

namespace {

constexpr std::uint64_t kLowBits = 0x5555555555555555ULL;

/// match-mask for one word: bit 2k set iff slot k holds code c (the SWAR
/// identity: a slot matches iff both of its diff bits are zero, i.e.
/// ~(diff | diff >> 1) restricted to the low bit of each slot).
inline std::uint64_t match_mask(std::uint64_t word, std::uint64_t pattern) noexcept {
  const std::uint64_t diff = word ^ pattern;
  return ~(diff | (diff >> 1)) & kLowBits;
}

std::uint64_t count_words_portable(const std::uint64_t* words, std::size_t n_words,
                                   std::uint8_t c) {
  const std::uint64_t pattern = kLowBits * c;
  std::uint64_t total = 0;
  std::size_t w = 0;
  // Match bits occupy even positions only, so two words' masks interleave
  // into one popcount — halves the (libcall-expensive at -march=x86-64)
  // popcounts.
  for (; w + 2 <= n_words; w += 2) {
    const std::uint64_t merged =
        match_mask(words[w], pattern) | (match_mask(words[w + 1], pattern) << 1);
    total += static_cast<unsigned>(__builtin_popcountll(merged));
  }
  if (w < n_words) {
    total += static_cast<unsigned>(__builtin_popcountll(match_mask(words[w], pattern)));
  }
  return total;
}

std::uint64_t count_block_prefix_portable(const std::uint64_t* words, unsigned off,
                                          std::uint8_t c) {
  const std::uint64_t pattern = kLowBits * c;
  std::uint64_t total = 0;
  unsigned w = 0;
  for (; (w + 1) * 32 <= off; ++w) {
    total += static_cast<unsigned>(__builtin_popcountll(match_mask(words[w], pattern)));
  }
  const unsigned rem = off - w * 32;
  if (rem != 0) total += static_cast<unsigned>(count_partial_word(words[w], c, rem));
  return total;
}

/// EPR match masks per 64-base plane pair: a base matches code c iff its
/// low bit equals c&1 and its high bit equals c>>1, i.e. (lo ^ lf) & (hi ^
/// hf) with lf/hf all-ones when the corresponding code bit is zero. Two
/// masked popcounts cover the whole 128-base block.
std::uint64_t count_epr_prefix_portable(const std::uint64_t* planes, unsigned off,
                                        std::uint8_t c) {
  const std::uint64_t lf = (c & 1) ? 0 : ~std::uint64_t{0};
  const std::uint64_t hf = (c & 2) ? 0 : ~std::uint64_t{0};
  const unsigned b0 = off < 64 ? off : 64;
  const unsigned b1 = off - b0;
  std::uint64_t m0 = (planes[0] ^ lf) & (planes[2] ^ hf);
  if (b0 < 64) m0 &= (std::uint64_t{1} << b0) - 1;
  std::uint64_t total = static_cast<unsigned>(__builtin_popcountll(m0));
  if (b1 != 0) {
    std::uint64_t m1 = (planes[1] ^ lf) & (planes[3] ^ hf);
    if (b1 < 64) m1 &= (std::uint64_t{1} << b1) - 1;
    total += static_cast<unsigned>(__builtin_popcountll(m1));
  }
  return total;
}

#if BWAVER_KERNEL_X86

/// Portable algorithm recompiled with hardware POPCNT (the baseline
/// -march=x86-64 build lowers __builtin_popcountll to a libcall).
__attribute__((target("sse4.2,popcnt"))) std::uint64_t count_epr_prefix_sse42(
    const std::uint64_t* planes, unsigned off, std::uint8_t c) {
  const std::uint64_t lf = (c & 1) ? 0 : ~std::uint64_t{0};
  const std::uint64_t hf = (c & 2) ? 0 : ~std::uint64_t{0};
  const unsigned b0 = off < 64 ? off : 64;
  const unsigned b1 = off - b0;
  std::uint64_t m0 = (planes[0] ^ lf) & (planes[2] ^ hf);
  if (b0 < 64) m0 &= (std::uint64_t{1} << b0) - 1;
  std::uint64_t total = static_cast<unsigned>(__builtin_popcountll(m0));
  if (b1 != 0) {
    std::uint64_t m1 = (planes[1] ^ lf) & (planes[3] ^ hf);
    if (b1 < 64) m1 &= (std::uint64_t{1} << b1) - 1;
    total += static_cast<unsigned>(__builtin_popcountll(m1));
  }
  return total;
}

/// Branchless whole-block EPR count: one ymm load covers all four planes,
/// the cross-half permute lines the hi planes up under the lo planes so the
/// match mask is a single AND, the prefix mask reuses the saturating-srlv
/// trick (lanes 2..3 always shift to zero, discarding the duplicated mask),
/// and one nibble-LUT popcount pass folds the answer. ~18 flat ops, no
/// data-dependent branches.
__attribute__((target("avx2,popcnt"))) std::uint64_t count_epr_prefix_avx2(
    const std::uint64_t* planes, unsigned off, std::uint8_t c) {
  const long long lf = (c & 1) ? 0 : -1;
  const long long hf = (c & 2) ? 0 : -1;
  const __m256i x = _mm256_xor_si256(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(planes)),
      _mm256_setr_epi64x(lf, lf, hf, hf));
  // [L0, L1, H0, H1] & [H0, H1, L0, L1] -> [M0, M1, M0, M1]
  const __m256i m = _mm256_and_si256(x, _mm256_permute4x64_epi64(x, 0x4E));
  const __m256i zero = _mm256_setzero_si256();
  // Lane i keeps its low (off - 64*i) bits; srlv saturates shifts >= 64 to
  // zero, which blanks both the past-the-prefix case and lanes 2..3.
  const __m256i t = _mm256_sub_epi64(_mm256_setr_epi64x(64, 128, 256, 256),
                                     _mm256_set1_epi64x(off));
  const __m256i s = _mm256_and_si256(t, _mm256_cmpgt_epi64(t, zero));
  const __m256i masked =
      _mm256_and_si256(m, _mm256_srlv_epi64(_mm256_set1_epi64x(-1), s));
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i nibble = _mm256_set1_epi8(0x0F);
  const __m256i lo4 = _mm256_and_si256(masked, nibble);
  const __m256i hi4 = _mm256_and_si256(_mm256_srli_epi16(masked, 4), nibble);
  const __m256i bytes =
      _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo4), _mm256_shuffle_epi8(lut, hi4));
  const __m256i sums = _mm256_sad_epu8(bytes, zero);
  const __m128i folded =
      _mm_add_epi64(_mm256_castsi256_si128(sums), _mm256_extracti128_si256(sums, 1));
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(folded)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(folded, 1));
}

__attribute__((target("sse4.2,popcnt"))) std::uint64_t count_block_prefix_sse42(
    const std::uint64_t* words, unsigned off, std::uint8_t c) {
  const std::uint64_t pattern = kLowBits * c;
  std::uint64_t total = 0;
  unsigned w = 0;
  for (; (w + 1) * 32 <= off; ++w) {
    total += static_cast<unsigned>(__builtin_popcountll(match_mask(words[w], pattern)));
  }
  const unsigned rem = off - w * 32;
  if (rem != 0) total += static_cast<unsigned>(count_partial_word(words[w], c, rem));
  return total;
}

/// Branchless whole-block count: all six words are matched and masked by a
/// per-lane prefix mask built with variable shifts (srlv saturates shifts
/// >= 64 to zero, which is exactly the "lane past the prefix" case), then
/// popcounted with the nibble LUT + SAD. No loop, no data-dependent
/// branches — the cost is flat in `off`.
__attribute__((target("avx2,popcnt"))) std::uint64_t count_block_prefix_avx2(
    const std::uint64_t* words, unsigned off, std::uint8_t c) {
  const long long bits = 2LL * off;  // prefix length in bits over the block
  const __m256i low = _mm256_set1_epi64x(static_cast<long long>(kLowBits));
  const __m256i ones = _mm256_set1_epi64x(-1);
  const __m256i zero = _mm256_setzero_si256();

  // Lanes 0..3 (words 0..3): shift s_i = max(64*(i+1) - bits, 0); the
  // resulting mask ~0 >> s_i keeps the low (bits - 64*i) bits of the lane.
  const __m256i t_lo =
      _mm256_sub_epi64(_mm256_setr_epi64x(64, 128, 192, 256), _mm256_set1_epi64x(bits));
  const __m256i s_lo = _mm256_and_si256(t_lo, _mm256_cmpgt_epi64(t_lo, zero));
  const __m256i mask_lo = _mm256_srlv_epi64(ones, s_lo);
  const __m256i da = _mm256_xor_si256(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words)),
      _mm256_set1_epi64x(static_cast<long long>(kLowBits * c)));
  const __m256i ma = _mm256_and_si256(
      _mm256_andnot_si256(_mm256_or_si256(da, _mm256_srli_epi64(da, 1)), low), mask_lo);

  // Lanes 4..5 (words 4..5), 128-bit.
  const __m128i t_hi =
      _mm_sub_epi64(_mm_set_epi64x(384, 320), _mm_set1_epi64x(bits));
  const __m128i s_hi = _mm_and_si128(t_hi, _mm_cmpgt_epi64(t_hi, _mm_setzero_si128()));
  const __m128i mask_hi = _mm_srlv_epi64(_mm_set1_epi64x(-1), s_hi);
  const __m128i db = _mm_xor_si128(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(words + 4)),
      _mm_set1_epi64x(static_cast<long long>(kLowBits * c)));
  const __m128i mb = _mm_and_si128(
      _mm_andnot_si128(_mm_or_si128(db, _mm_srli_epi64(db, 1)),
                       _mm_set1_epi64x(static_cast<long long>(kLowBits))),
      mask_hi);

  // Match bits sit on even positions, so the two extra words interleave
  // into lanes 0..1 of the 256-bit mask — one popcount pass for all six.
  const __m256i merged =
      _mm256_or_si256(ma, _mm256_slli_epi64(_mm256_zextsi128_si256(mb), 1));
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i nibble = _mm256_set1_epi8(0x0F);
  const __m256i lo4 = _mm256_and_si256(merged, nibble);
  const __m256i hi4 = _mm256_and_si256(_mm256_srli_epi16(merged, 4), nibble);
  const __m256i bytes =
      _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo4), _mm256_shuffle_epi8(lut, hi4));
  const __m256i sums = _mm256_sad_epu8(bytes, zero);
  const __m128i folded =
      _mm_add_epi64(_mm256_castsi256_si128(sums), _mm256_extracti128_si256(sums, 1));
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(folded)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(folded, 1));
}

__attribute__((target("sse4.2,popcnt"))) std::uint64_t count_words_sse42(
    const std::uint64_t* words, std::size_t n_words, std::uint8_t c) {
  const __m128i pattern = _mm_set1_epi64x(static_cast<long long>(kLowBits * c));
  const __m128i low = _mm_set1_epi64x(static_cast<long long>(kLowBits));
  std::uint64_t total = 0;
  std::size_t w = 0;
  for (; w + 4 <= n_words; w += 4) {
    const __m128i da = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(words + w)), pattern);
    const __m128i db = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(words + w + 2)), pattern);
    const __m128i ma =
        _mm_andnot_si128(_mm_or_si128(da, _mm_srli_epi64(da, 1)), low);
    const __m128i mb =
        _mm_andnot_si128(_mm_or_si128(db, _mm_srli_epi64(db, 1)), low);
    const __m128i merged = _mm_or_si128(ma, _mm_slli_epi64(mb, 1));
    total += static_cast<unsigned>(__builtin_popcountll(
        static_cast<std::uint64_t>(_mm_cvtsi128_si64(merged))));
    total += static_cast<unsigned>(__builtin_popcountll(
        static_cast<std::uint64_t>(_mm_extract_epi64(merged, 1))));
  }
  return total + count_words_portable(words + w, n_words - w, c);
}

__attribute__((target("avx2,popcnt"))) std::uint64_t count_words_avx2(
    const std::uint64_t* words, std::size_t n_words, std::uint8_t c) {
  const __m256i pattern = _mm256_set1_epi64x(static_cast<long long>(kLowBits * c));
  const __m256i low = _mm256_set1_epi64x(static_cast<long long>(kLowBits));
  // Byte-wise popcount via the nibble LUT (Mula), horizontally widened with
  // SAD — no cross-lane extracts in the hot loop.
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3,
                                       4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3,
                                       3, 4);
  const __m256i nibble = _mm256_set1_epi8(0x0F);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  std::size_t w = 0;
  for (; w + 8 <= n_words; w += 8) {
    const __m256i da = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w)), pattern);
    const __m256i db = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w + 4)), pattern);
    const __m256i ma =
        _mm256_andnot_si256(_mm256_or_si256(da, _mm256_srli_epi64(da, 1)), low);
    const __m256i mb =
        _mm256_andnot_si256(_mm256_or_si256(db, _mm256_srli_epi64(db, 1)), low);
    const __m256i merged = _mm256_or_si256(ma, _mm256_slli_epi64(mb, 1));
    const __m256i lo4 = _mm256_and_si256(merged, nibble);
    const __m256i hi4 = _mm256_and_si256(_mm256_srli_epi16(merged, 4), nibble);
    const __m256i bytes = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo4),
                                          _mm256_shuffle_epi8(lut, hi4));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(bytes, zero));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] +
         count_words_portable(words + w, n_words - w, c);
}

#endif  // BWAVER_KERNEL_X86

#if defined(__aarch64__)

std::uint64_t count_words_neon(const std::uint64_t* words, std::size_t n_words,
                               std::uint8_t c) {
  const uint64x2_t pattern = vdupq_n_u64(kLowBits * c);
  const uint64x2_t low = vdupq_n_u64(kLowBits);
  std::uint64_t total = 0;
  std::size_t w = 0;
  for (; w + 4 <= n_words; w += 4) {
    const uint64x2_t da = veorq_u64(vld1q_u64(words + w), pattern);
    const uint64x2_t db = veorq_u64(vld1q_u64(words + w + 2), pattern);
    const uint64x2_t ma = vbicq_u64(low, vorrq_u64(da, vshrq_n_u64(da, 1)));
    const uint64x2_t mb = vbicq_u64(low, vorrq_u64(db, vshrq_n_u64(db, 1)));
    const uint64x2_t merged = vorrq_u64(ma, vshlq_n_u64(mb, 1));
    total += vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(merged)));
  }
  return total + count_words_portable(words + w, n_words - w, c);
}

#endif  // __aarch64__

const RankKernel kPortableKernel{"portable", SimdLevel::kPortable,
                                 &count_words_portable, &count_block_prefix_portable,
                                 &count_epr_prefix_portable};

std::vector<RankKernel> build_available() {
  std::vector<RankKernel> kernels;
  const CpuFeatures& features = cpu_features();
  (void)features;
#if BWAVER_KERNEL_X86
  if (features.avx2) {
    kernels.push_back({"avx2", SimdLevel::kAvx2, &count_words_avx2,
                       &count_block_prefix_avx2, &count_epr_prefix_avx2});
  }
  if (features.sse42) {
    kernels.push_back({"sse42", SimdLevel::kSse42, &count_words_sse42,
                       &count_block_prefix_sse42, &count_epr_prefix_sse42});
  }
#endif
#if defined(__aarch64__)
  if (features.neon) {
    // NEON bulk counting pays off in count_words; the short block prefix
    // stays on the scalar path (no per-lane saturating shifts to lean on).
    // The EPR prefix is two masked popcounts — aarch64 lowers the portable
    // __builtin_popcountll to cnt directly, so it shares that path too.
    kernels.push_back({"neon", SimdLevel::kNeon, &count_words_neon,
                       &count_block_prefix_portable, &count_epr_prefix_portable});
  }
#endif
  kernels.push_back(kPortableKernel);
  return kernels;
}

}  // namespace

std::uint64_t count_range(const RankKernel& kernel, const std::uint64_t* words,
                          std::size_t lo, std::size_t hi, std::uint8_t c) noexcept {
  if (lo >= hi) return 0;
  std::size_t w0 = lo >> 5;
  const std::size_t w1 = hi >> 5;
  const unsigned r0 = static_cast<unsigned>(lo & 31);
  const unsigned r1 = static_cast<unsigned>(hi & 31);
  if (w0 == w1) {
    return static_cast<std::uint64_t>(
        count_partial_word(words[w0] >> (2 * r0), c, r1 - r0));
  }
  std::uint64_t total = 0;
  if (r0 != 0) {
    total += static_cast<std::uint64_t>(
        count_partial_word(words[w0] >> (2 * r0), c, 32 - r0));
    ++w0;
  }
  if (w1 > w0) total += kernel.count_words(words + w0, w1 - w0, c);
  if (r1 != 0) total += static_cast<std::uint64_t>(count_partial_word(words[w1], c, r1));
  return total;
}

std::span<const RankKernel> available_kernels() {
  static const std::vector<RankKernel> kernels = build_available();
  return kernels;
}

const RankKernel& active_kernel() { return available_kernels().front(); }

const RankKernel* kernel_for(SimdLevel level) {
  for (const RankKernel& kernel : available_kernels()) {
    if (kernel.level == level) return &kernel;
  }
  return nullptr;
}

const RankKernel& portable_kernel() { return kPortableKernel; }

}  // namespace bwaver::kernels
