// VectorOcc — 2-bit-packed BWT with interleaved checkpoints, scanned by
// the runtime-dispatched SIMD rank kernels (see rank_kernel.hpp).
//
// Layout: one cache line per 192 bases. Each 64-byte block carries the
// four cumulative symbol counts up to the block start (16 bytes) followed
// by six packed words (48 bytes = 192 two-bit codes), so every rank is one
// line fetch plus a vectorized count — against SampledOcc's split
// packed/checkpoint arrays (two fetch streams) and scalar SWAR loop. A
// terminal block holds the final totals, which also enables bidirectional
// scanning: offsets past the block midpoint count backward from the next
// block's checkpoint, halving the average scan length.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "io/byte_io.hpp"
#include "kernels/rank_kernel.hpp"

namespace bwaver {

class VectorOcc {
 public:
  static constexpr unsigned kWordsPerBlock = 6;
  static constexpr unsigned kBasesPerBlock = 32 * kWordsPerBlock;  // 192

  /// Checkpoint counts and packed text interleaved in one cache line.
  struct alignas(64) Block {
    std::array<std::uint32_t, 4> cum{};     ///< rank(c, block start)
    std::array<std::uint64_t, kWordsPerBlock> words{};  ///< 2-bit codes
  };
  static_assert(sizeof(Block) == 64, "one rank = one cache line");

  VectorOcc() = default;

  /// Packs the squeezed BWT; `kernel` pins a specific counting kernel
  /// (tests sweep every available one), nullptr selects the dispatch
  /// choice kernels::active_kernel().
  explicit VectorOcc(std::span<const std::uint8_t> bwt,
                     const kernels::RankKernel* kernel = nullptr);

  std::size_t rank(std::uint8_t c, std::size_t i) const noexcept;

  /// rank(c, i1) and rank(c, i2) with i1 <= i2; when both offsets land in
  /// the same block the second answer extends the first one's scan.
  std::pair<std::size_t, std::size_t> rank2(std::uint8_t c, std::size_t i1,
                                            std::size_t i2) const noexcept;

  /// Pulls the cache line holding offset `i`'s block toward L1 ahead of a
  /// rank/rank2 at that offset (the sweep scheduler's lookahead hook).
  void prefetch(std::size_t i) const noexcept {
    __builtin_prefetch(&blocks_[i / kBasesPerBlock], /*rw=*/0, /*locality=*/1);
  }

  /// One bulk-rank query: rank2(c, lo, hi) with lo <= hi <= size().
  struct BulkQuery {
    std::uint32_t lo;
    std::uint32_t hi;
    std::uint8_t c;
  };

  /// Bulk multi-position rank: out[q] = rank2(queries[q]) for every query.
  /// The scan runs a software-prefetch window ahead of itself, so the
  /// independent line fetches overlap instead of serializing. The sweep
  /// scheduler reaches the same overlap by interleaving prefetch() with
  /// rank2 steps (which avoids materializing a query array per pass); this
  /// entry point serves callers that already hold a flat query batch.
  void rank2_bulk(std::span<const BulkQuery> queries,
                  std::pair<std::uint32_t, std::uint32_t>* out) const noexcept;
  std::pair<std::size_t, std::size_t> rank_pair(std::uint8_t c, std::size_t i1,
                                                std::size_t i2) const noexcept {
    return rank2(c, i1, i2);
  }

  std::uint8_t access(std::size_t i) const noexcept {
    const Block& block = blocks_[i / kBasesPerBlock];
    const std::size_t off = i % kBasesPerBlock;
    return static_cast<std::uint8_t>((block.words[off >> 5] >> ((off & 31) * 2)) & 3);
  }

  std::size_t size() const noexcept { return n_; }
  std::size_t size_in_bytes() const noexcept { return blocks_.size() * sizeof(Block); }

  /// The counting kernel this instance dispatches to.
  const kernels::RankKernel& kernel() const noexcept { return *kernel_; }

  void save(ByteWriter& writer) const;
  /// The kernel choice is not serialized — a loaded instance re-dispatches
  /// on the loading machine's CPU.
  static VectorOcc load(ByteReader& reader);

 private:
  std::vector<Block> blocks_;  ///< ceil(n/192) data blocks + 1 terminal
  std::size_t n_ = 0;
  const kernels::RankKernel* kernel_ = nullptr;
};

}  // namespace bwaver
