// VectorOcc — 2-bit-packed BWT with interleaved checkpoints, scanned by
// the runtime-dispatched SIMD rank kernels (see rank_kernel.hpp).
//
// Layout: one cache line per 192 bases. Each 64-byte block carries the
// four cumulative symbol counts up to the block start (16 bytes) followed
// by six packed words (48 bytes = 192 two-bit codes), so every rank is one
// line fetch plus a vectorized count — against SampledOcc's split
// packed/checkpoint arrays (two fetch streams) and scalar SWAR loop. A
// terminal block holds the final totals, which also enables bidirectional
// scanning: offsets past the block midpoint count backward from the next
// block's checkpoint, halving the average scan length.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "io/byte_io.hpp"
#include "kernels/rank_kernel.hpp"

namespace bwaver {

class VectorOcc {
 public:
  static constexpr unsigned kWordsPerBlock = 6;
  static constexpr unsigned kBasesPerBlock = 32 * kWordsPerBlock;  // 192

  /// Checkpoint counts and packed text interleaved in one cache line.
  struct alignas(64) Block {
    std::array<std::uint32_t, 4> cum{};     ///< rank(c, block start)
    std::array<std::uint64_t, kWordsPerBlock> words{};  ///< 2-bit codes
  };
  static_assert(sizeof(Block) == 64, "one rank = one cache line");

  VectorOcc() = default;

  /// Packs the squeezed BWT; `kernel` pins a specific counting kernel
  /// (tests sweep every available one), nullptr selects the dispatch
  /// choice kernels::active_kernel().
  explicit VectorOcc(std::span<const std::uint8_t> bwt,
                     const kernels::RankKernel* kernel = nullptr);

  std::size_t rank(std::uint8_t c, std::size_t i) const noexcept;

  /// rank(c, i1) and rank(c, i2) with i1 <= i2; when both offsets land in
  /// the same block the second answer extends the first one's scan.
  std::pair<std::size_t, std::size_t> rank2(std::uint8_t c, std::size_t i1,
                                            std::size_t i2) const noexcept;
  std::pair<std::size_t, std::size_t> rank_pair(std::uint8_t c, std::size_t i1,
                                                std::size_t i2) const noexcept {
    return rank2(c, i1, i2);
  }

  std::uint8_t access(std::size_t i) const noexcept {
    const Block& block = blocks_[i / kBasesPerBlock];
    const std::size_t off = i % kBasesPerBlock;
    return static_cast<std::uint8_t>((block.words[off >> 5] >> ((off & 31) * 2)) & 3);
  }

  std::size_t size() const noexcept { return n_; }
  std::size_t size_in_bytes() const noexcept { return blocks_.size() * sizeof(Block); }

  /// The counting kernel this instance dispatches to.
  const kernels::RankKernel& kernel() const noexcept { return *kernel_; }

  void save(ByteWriter& writer) const;
  /// The kernel choice is not serialized — a loaded instance re-dispatches
  /// on the loading machine's CPU.
  static VectorOcc load(ByteReader& reader);

 private:
  std::vector<Block> blocks_;  ///< ceil(n/192) data blocks + 1 terminal
  std::size_t n_ = 0;
  const kernels::RankKernel* kernel_ = nullptr;
};

}  // namespace bwaver
