// Vectorized character-counting kernels for 2-bit-packed DNA text.
//
// A RankKernel answers "how many slots of these packed 64-bit words hold
// code c?" — the inner loop of every sampled/checkpointed Occ rank
// (Snytsar, *Vectorized Character Counting for Faster Pattern Matching*).
// Several implementations of the same contract are compiled into the
// binary with per-function target attributes (so a -march=x86-64 baseline
// build still carries AVX2/SSE4.2 code paths) and one is selected at
// runtime from the cached cpu_features() snapshot. The selection can be
// narrowed with $BWAVER_CPU_FEATURES — see util/cpu_features.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/cpu_features.hpp"

namespace bwaver::kernels {

/// Occurrences of 2-bit code `c` across `n_words` packed words (32 bases
/// per word, all slots counted — callers mask partial words themselves
/// with count_partial_word below).
using CountWordsFn = std::uint64_t (*)(const std::uint64_t* words,
                                       std::size_t n_words, std::uint8_t c);

/// Occurrences of code `c` among the first `off` bases of exactly six
/// packed words — one VectorOcc block (192 bases), off in [0, 192]. This is
/// the per-rank hot path: implementations are branchless straight-line code
/// (vector ISAs build the position mask with per-lane variable shifts), so
/// a checkpointed rank costs one cache-line fetch plus this call.
using CountBlockPrefixFn = std::uint64_t (*)(const std::uint64_t* block_words,
                                             unsigned off, std::uint8_t c);

/// Occurrences of code `c` among the first `off` bases of one EPR-dictionary
/// block (Pockrandt et al.): `planes` holds four bit-transposed words —
/// planes[0..1] the low code bit of bases 0..63 / 64..127, planes[2..3] the
/// high code bit — and off is in [0, 128]. The match mask is one XOR + AND
/// per plane pair and the count one popcount pass, with no dependence on the
/// symbol value beyond the two XOR constants, so rank cost is flat in both
/// `off` and `c`.
using CountEprPrefixFn = std::uint64_t (*)(const std::uint64_t* planes,
                                           unsigned off, std::uint8_t c);

/// One character-counting implementation. Plain struct of function
/// pointers so kernels enumerate, bench and test uniformly.
struct RankKernel {
  const char* name = "portable";       ///< "portable" / "sse42" / "avx2" / "neon"
  SimdLevel level = SimdLevel::kPortable;
  CountWordsFn count_words = nullptr;
  CountBlockPrefixFn count_block_prefix = nullptr;
  CountEprPrefixFn count_epr_prefix = nullptr;
};

/// Occurrences of code `c` among the low `bases` slots of one word
/// (bases in [0, 32]). Scalar SWAR — partial words are never the hot
/// part, every kernel shares this edge handling.
inline int count_partial_word(std::uint64_t word, std::uint8_t c,
                              unsigned bases) noexcept {
  if (bases == 0) return 0;
  const std::uint64_t diff = word ^ (0x5555555555555555ULL * c);
  std::uint64_t match = ~diff & (~diff >> 1) & 0x5555555555555555ULL;
  if (bases < 32) match &= (std::uint64_t{1} << (2 * bases)) - 1;
  return static_cast<int>(static_cast<unsigned>(__builtin_popcountll(match)));
}

/// Occurrences of code `c` in the packed base range [lo, hi) of `words`
/// (base positions relative to words[0]; hi/32 must stay within the
/// span). Full interior words go through the kernel, the ragged edges
/// through count_partial_word.
std::uint64_t count_range(const RankKernel& kernel, const std::uint64_t* words,
                          std::size_t lo, std::size_t hi, std::uint8_t c) noexcept;

/// Every kernel this binary can run on this machine (respecting the
/// $BWAVER_CPU_FEATURES cap), best first. The portable kernel is always
/// present and always last.
std::span<const RankKernel> available_kernels();

/// The dispatch choice: available_kernels().front().
const RankKernel& active_kernel();

/// The kernel for an exact SIMD tier, or nullptr when this machine (or
/// the feature cap) cannot run it.
const RankKernel* kernel_for(SimdLevel level);

/// The always-available scalar SWAR kernel (no dispatch, no cap).
const RankKernel& portable_kernel();

}  // namespace bwaver::kernels
