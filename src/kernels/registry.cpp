#include "kernels/registry.hpp"

#include <cstdlib>

#include "kernels/rank_kernel.hpp"

namespace bwaver::kernels {

namespace {

// approx_bytes_per_base: RRR ~0.36 (entropy-coded blocks + directories),
// plain wavelet ~0.31 (2 raw bits + two-level rank), sampled ~0.375
// (0.25 packed + 16 B checkpoint per 128 bases at the default width),
// vector 64 B per 192 bases = ~0.34, epr 64 B per 128 bases = 0.5 (the
// bit-transposed layout spends space to make every rank one cache line).
constexpr EngineSpec kEngineTable[] = {
    {MappingEngine::kFpga, "fpga", nullptr, "RrrWaveletOcc",
     "modeled FPGA device scanning the RRR wavelet tree in fabric", true, false,
     0.36},
    {MappingEngine::kCpu, "rrr", "cpu", "RrrWaveletOcc",
     "the paper's software search over the RRR wavelet tree", false, false, 0.36},
    {MappingEngine::kBowtie2Like, "sampled", "bowtie2like", "SampledOcc",
     "Bowtie-style packed BWT with checkpointed counters, scalar SWAR", false,
     false, 0.375},
    {MappingEngine::kPlainWavelet, "plain", nullptr, "PlainWaveletOcc",
     "uncompressed wavelet tree with two-level rank directories", false, false,
     0.31},
    {MappingEngine::kVector, "vector", nullptr, "VectorOcc",
     "interleaved packed BWT counted by the runtime-dispatched SIMD kernels",
     false, true, 0.34},
    {MappingEngine::kEpr, "epr", nullptr, "EprOcc",
     "bit-transposed EPR dictionary, one cache line and one popcount per rank",
     false, true, 0.5},
};

}  // namespace

std::span<const EngineSpec> engines() { return kEngineTable; }

const EngineSpec& engine_spec(MappingEngine engine) {
  for (const EngineSpec& spec : kEngineTable) {
    if (spec.engine == engine) return spec;
  }
  return kEngineTable[0];
}

std::optional<MappingEngine> parse_engine_name(std::string_view name) {
  for (const EngineSpec& spec : kEngineTable) {
    if (name == spec.name || (spec.alias != nullptr && name == spec.alias)) {
      return spec.engine;
    }
  }
  return std::nullopt;
}

MappingEngine default_engine() {
  if (const char* env = std::getenv("BWAVER_ENGINE")) {
    if (const auto engine = parse_engine_name(env)) return *engine;
  }
  return MappingEngine::kFpga;
}

const char* engine_kernel_name(MappingEngine engine) {
  return engine_spec(engine).vectorized ? active_kernel().name : "scalar";
}

}  // namespace bwaver::kernels
