// FM-index over a DNA reference (paper, Sec. III-A).
//
// Backward search maintains the suffix-array interval [lo, hi) of rows of
// the Burrows-Wheeler matrix whose suffixes start with the current pattern
// suffix, via the Ferragina-Manzini recurrence
//     start(aX) = C(a) + Occ(a, start(X))
//     end(aX)   = C(a) + Occ(a, end(X))
// (0-based half-open form of the paper's Eq. 4-5). The interval is non-empty
// iff aX occurs in the text; positions come from SA[lo, hi).
//
// The occurrence backend is a template parameter (see occ_backends.hpp).
// The sentinel is handled out-of-band: Occ backends index the squeezed BWT
// and `occ()` adjusts row indices past the primary row, exactly the
// "checked in the backward search function" scheme the paper describes.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "fmindex/bwt.hpp"
#include "fmindex/dna.hpp"
#include "fmindex/suffix_array.hpp"
#include "io/byte_io.hpp"

namespace bwaver {

/// Half-open SA-row interval; empty() means the pattern does not occur.
struct SaInterval {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  bool empty() const noexcept { return lo >= hi; }
  std::uint32_t count() const noexcept { return empty() ? 0 : hi - lo; }
  friend bool operator==(const SaInterval&, const SaInterval&) = default;
};

template <typename Occ>
class FmIndex {
 public:
  using OccBuilder = std::function<Occ(std::span<const std::uint8_t>)>;

  FmIndex() = default;

  /// Builds SA + BWT + Occ from the 2-bit-coded reference.
  FmIndex(std::span<const std::uint8_t> text, const OccBuilder& builder) {
    sa_ = build_suffix_array(text);
    bwt_ = build_bwt(text, sa_);
    occ_backend_ = builder(bwt_.symbols);
    init_c_array();
  }

  /// Assembles from precomputed parts (the pipeline's step-2 path, where
  /// BWT and SA were produced by step 1 and read back from disk).
  FmIndex(Bwt bwt, std::vector<std::uint32_t> sa, const OccBuilder& builder)
      : bwt_(std::move(bwt)), sa_(std::move(sa)) {
    if (sa_.size() != static_cast<std::size_t>(bwt_.text_length) + 1) {
      throw std::invalid_argument("FmIndex: SA/BWT size mismatch");
    }
    occ_backend_ = builder(bwt_.symbols);
    init_c_array();
  }

  /// Assembles from a fully deserialized Occ backend (the archive load path:
  /// the encoded structure comes off disk, nothing is rebuilt).
  FmIndex(Bwt bwt, std::vector<std::uint32_t> sa, Occ occ_backend)
      : bwt_(std::move(bwt)), sa_(std::move(sa)), occ_backend_(std::move(occ_backend)) {
    if (sa_.size() != static_cast<std::size_t>(bwt_.text_length) + 1) {
      throw std::invalid_argument("FmIndex: SA/BWT size mismatch");
    }
    if (occ_backend_.size() != bwt_.symbols.size()) {
      throw std::invalid_argument("FmIndex: Occ/BWT size mismatch");
    }
    init_c_array();
  }

  /// Text length n (rows in the BW matrix = n + 1).
  std::size_t size() const noexcept { return bwt_.text_length; }
  std::size_t rows() const noexcept { return static_cast<std::size_t>(bwt_.text_length) + 1; }

  /// Occ(c, row) over the full (n+1)-row BWT column: occurrences of code c
  /// among rows [0, row). The sentinel row contributes nothing for any base.
  std::size_t occ(std::uint8_t c, std::size_t row) const noexcept {
    return occ_backend_.rank(c, row <= bwt_.primary ? row : row - 1);
  }

  /// C(c): number of symbols in T$ lexicographically smaller than base c
  /// (the sentinel counts once).
  std::uint32_t c_array(std::uint8_t c) const noexcept { return c_[c]; }

  /// Whole-matrix interval (every suffix matches the empty pattern).
  SaInterval full_interval() const noexcept {
    return SaInterval{0, static_cast<std::uint32_t>(rows())};
  }

  /// BWT symbol of row (the full column's character, 4 for the sentinel).
  std::uint8_t bwt_at(std::uint32_t row) const noexcept {
    if (row == bwt_.primary) return 4;
    return occ_backend_.access(row < bwt_.primary ? row : row - 1);
  }

  /// Last-to-first mapping: the row whose suffix is one text position
  /// earlier. LF(primary) = 0 (the sentinel maps to the first F-column row).
  std::uint32_t lf(std::uint32_t row) const noexcept {
    const std::uint8_t c = bwt_at(row);
    if (c == 4) return 0;
    return static_cast<std::uint32_t>(c_[c] + occ(c, row));
  }

  /// One backward-search step: prepend code `c` to the matched pattern.
  SaInterval step(SaInterval iv, std::uint8_t c) const noexcept {
    return SaInterval{
        static_cast<std::uint32_t>(c_[c] + occ(c, iv.lo)),
        static_cast<std::uint32_t>(c_[c] + occ(c, iv.hi))};
  }

  /// Backward search of a full pattern (codes 0..3). Stops early when the
  /// interval empties — the property the paper exploits for non-mapping
  /// reads. Returns the final interval.
  SaInterval count(std::span<const std::uint8_t> pattern) const noexcept {
    SaInterval iv = full_interval();
    for (std::size_t k = pattern.size(); k-- > 0;) {
      iv = step(iv, pattern[k]);
      if (iv.empty()) break;
    }
    return iv;
  }

  /// Text positions for an interval, via the host-resident suffix array.
  std::vector<std::uint32_t> locate(SaInterval iv) const {
    std::vector<std::uint32_t> positions;
    if (iv.empty()) return positions;
    positions.reserve(iv.count());
    for (std::uint32_t row = iv.lo; row < iv.hi; ++row) {
      positions.push_back(sa_[row]);
    }
    return positions;
  }

  std::vector<std::uint32_t> locate(std::span<const std::uint8_t> pattern) const {
    return locate(count(pattern));
  }

  /// Forward-strand and reverse-complement intervals for one read — the
  /// pair of searches the FPGA kernel executes concurrently.
  std::pair<SaInterval, SaInterval> count_both_strands(
      std::span<const std::uint8_t> pattern) const {
    const auto rc = dna_reverse_complement(pattern);
    return {count(pattern), count(rc)};
  }

  const Bwt& bwt() const noexcept { return bwt_; }
  const std::vector<std::uint32_t>& suffix_array() const noexcept { return sa_; }
  const Occ& occ_backend() const noexcept { return occ_backend_; }

  /// Bytes of the succinct structure (Occ backend only — what travels to
  /// the device). SA and raw BWT stay on the host.
  std::size_t occ_size_in_bytes() const noexcept { return occ_backend_.size_in_bytes(); }

  /// Binary (de)serialization of the complete index (BWT + SA + encoded
  /// Occ backend); requires Occ::save / Occ::load.
  void save(ByteWriter& writer) const {
    writer.u32(bwt_.text_length);
    writer.u32(bwt_.primary);
    writer.vec_u8(bwt_.symbols);
    writer.vec_u32(sa_);
    occ_backend_.save(writer);
  }
  static FmIndex load(ByteReader& reader) {
    FmIndex index;
    index.bwt_.text_length = reader.u32();
    index.bwt_.primary = reader.u32();
    index.bwt_.symbols = reader.vec_u8();
    index.sa_ = reader.vec_u32();
    if (index.bwt_.symbols.size() != index.bwt_.text_length ||
        index.sa_.size() != static_cast<std::size_t>(index.bwt_.text_length) + 1) {
      throw IoError("FmIndex::load: inconsistent sizes");
    }
    index.occ_backend_ = Occ::load(reader);
    index.init_c_array();
    return index;
  }

 private:
  void init_c_array() {
    std::array<std::uint32_t, 4> counts{};
    for (std::uint8_t c : bwt_.symbols) ++counts[c];
    std::uint32_t sum = 1;  // the sentinel precedes every base
    for (unsigned c = 0; c < 4; ++c) {
      c_[c] = sum;
      sum += counts[c];
    }
  }

  Bwt bwt_;
  std::vector<std::uint32_t> sa_;
  Occ occ_backend_{};
  std::array<std::uint32_t, 4> c_{};
};

}  // namespace bwaver
