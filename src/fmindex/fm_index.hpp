// FM-index over a DNA reference (paper, Sec. III-A).
//
// Backward search maintains the suffix-array interval [lo, hi) of rows of
// the Burrows-Wheeler matrix whose suffixes start with the current pattern
// suffix, via the Ferragina-Manzini recurrence
//     start(aX) = C(a) + Occ(a, start(X))
//     end(aX)   = C(a) + Occ(a, end(X))
// (0-based half-open form of the paper's Eq. 4-5). The interval is non-empty
// iff aX occurs in the text; positions come from SA[lo, hi).
//
// The occurrence backend is a template parameter (see occ_backends.hpp).
// The sentinel is handled out-of-band: Occ backends index the squeezed BWT
// and `occ()` adjusts row indices past the primary row, exactly the
// "checked in the backward search function" scheme the paper describes.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "fmindex/bwt.hpp"
#include "fmindex/dna.hpp"
#include "fmindex/kmer_table.hpp"
#include "fmindex/sa_interval.hpp"
#include "fmindex/suffix_array.hpp"
#include "io/byte_io.hpp"
#include "util/flat_array.hpp"

namespace bwaver {

template <typename Occ>
class FmIndex {
 public:
  using OccBuilder = std::function<Occ(std::span<const std::uint8_t>)>;

  FmIndex() = default;

  /// Builds SA + BWT + Occ from the 2-bit-coded reference.
  FmIndex(std::span<const std::uint8_t> text, const OccBuilder& builder) {
    sa_ = build_suffix_array(text);
    bwt_ = build_bwt(text, sa_);
    occ_backend_ = builder(bwt_.symbols);
    init_c_array();
  }

  /// Assembles from precomputed parts (the pipeline's step-2 path, where
  /// BWT and SA were produced by step 1 and read back from disk).
  FmIndex(Bwt bwt, FlatArray<std::uint32_t> sa, const OccBuilder& builder)
      : bwt_(std::move(bwt)), sa_(std::move(sa)) {
    if (sa_.size() != static_cast<std::size_t>(bwt_.text_length) + 1) {
      throw std::invalid_argument("FmIndex: SA/BWT size mismatch");
    }
    occ_backend_ = builder(bwt_.symbols);
    init_c_array();
  }

  /// Assembles from a fully deserialized Occ backend (the archive load path:
  /// the encoded structure comes off disk, nothing is rebuilt).
  FmIndex(Bwt bwt, FlatArray<std::uint32_t> sa, Occ occ_backend)
      : bwt_(std::move(bwt)), sa_(std::move(sa)), occ_backend_(std::move(occ_backend)) {
    if (sa_.size() != static_cast<std::size_t>(bwt_.text_length) + 1) {
      throw std::invalid_argument("FmIndex: SA/BWT size mismatch");
    }
    if (occ_backend_.size() != bwt_.symbols.size()) {
      throw std::invalid_argument("FmIndex: Occ/BWT size mismatch");
    }
    init_c_array();
  }

  /// Archive-v3 load path: like the Occ-adopting constructor above, but the
  /// C array comes from the (checksum-verified) archive meta section, so no
  /// O(n) scan of the BWT is needed — the only per-element pass left on a
  /// zero-copy load.
  FmIndex(Bwt bwt, FlatArray<std::uint32_t> sa, Occ occ_backend,
          const std::array<std::uint32_t, 4>& c_table)
      : bwt_(std::move(bwt)),
        sa_(std::move(sa)),
        occ_backend_(std::move(occ_backend)),
        c_(c_table) {
    if (sa_.size() != static_cast<std::size_t>(bwt_.text_length) + 1) {
      throw std::invalid_argument("FmIndex: SA/BWT size mismatch");
    }
    if (occ_backend_.size() != bwt_.symbols.size()) {
      throw std::invalid_argument("FmIndex: Occ/BWT size mismatch");
    }
    if (c_[0] != 1 || c_[1] < c_[0] || c_[2] < c_[1] || c_[3] < c_[2] ||
        c_[3] > bwt_.text_length + 1) {
      throw std::invalid_argument("FmIndex: implausible C array");
    }
  }

  /// Text length n (rows in the BW matrix = n + 1).
  std::size_t size() const noexcept { return bwt_.text_length; }
  std::size_t rows() const noexcept { return static_cast<std::size_t>(bwt_.text_length) + 1; }

  /// Occ(c, row) over the full (n+1)-row BWT column: occurrences of code c
  /// among rows [0, row). The sentinel row contributes nothing for any base.
  std::size_t occ(std::uint8_t c, std::size_t row) const noexcept {
    return occ_backend_.rank(c, row <= bwt_.primary ? row : row - 1);
  }

  /// Occ at both interval bounds, row1 <= row2. Backends exposing rank2
  /// answer both with one wavelet descent (and, for narrow intervals, a
  /// shared RRR superblock scan); others pay two independent ranks.
  std::pair<std::size_t, std::size_t> occ2(std::uint8_t c, std::size_t row1,
                                           std::size_t row2) const noexcept {
    const std::size_t a1 = row1 <= bwt_.primary ? row1 : row1 - 1;
    const std::size_t a2 = row2 <= bwt_.primary ? row2 : row2 - 1;
    if constexpr (requires { occ_backend_.rank2(c, a1, a2); }) {
      return occ_backend_.rank2(c, a1, a2);
    } else {
      return {occ_backend_.rank(c, a1), occ_backend_.rank(c, a2)};
    }
  }

  /// Occ of every base at once: {Occ(0,row), .., Occ(3,row)} — the
  /// bidirectional-extension primitive (extendLeft needs all four counts at
  /// both interval bounds). Backends exposing rank_all (the EPR dictionary)
  /// answer from one cache line; others pay four independent ranks.
  std::array<std::uint32_t, 4> occ_all(std::size_t row) const noexcept {
    const std::size_t a = row <= bwt_.primary ? row : row - 1;
    if constexpr (requires { occ_backend_.rank_all(a); }) {
      return occ_backend_.rank_all(a);
    } else {
      return {static_cast<std::uint32_t>(occ_backend_.rank(0, a)),
              static_cast<std::uint32_t>(occ_backend_.rank(1, a)),
              static_cast<std::uint32_t>(occ_backend_.rank(2, a)),
              static_cast<std::uint32_t>(occ_backend_.rank(3, a))};
    }
  }

  /// C(c): number of symbols in T$ lexicographically smaller than base c
  /// (the sentinel counts once).
  std::uint32_t c_array(std::uint8_t c) const noexcept { return c_[c]; }

  /// Whole-matrix interval (every suffix matches the empty pattern).
  SaInterval full_interval() const noexcept {
    return SaInterval{0, static_cast<std::uint32_t>(rows())};
  }

  /// BWT symbol of row (the full column's character, 4 for the sentinel).
  std::uint8_t bwt_at(std::uint32_t row) const noexcept {
    if (row == bwt_.primary) return 4;
    return occ_backend_.access(row < bwt_.primary ? row : row - 1);
  }

  /// Last-to-first mapping: the row whose suffix is one text position
  /// earlier. LF(primary) = 0 (the sentinel maps to the first F-column row).
  std::uint32_t lf(std::uint32_t row) const noexcept {
    const std::uint8_t c = bwt_at(row);
    if (c == 4) return 0;
    return static_cast<std::uint32_t>(c_[c] + occ(c, row));
  }

  /// One backward-search step: prepend code `c` to the matched pattern.
  /// Both interval bounds resolve through occ2 so pair-capable backends
  /// answer them in one descent.
  SaInterval step(SaInterval iv, std::uint8_t c) const noexcept {
    const auto [r_lo, r_hi] = occ2(c, iv.lo, iv.hi);
    return SaInterval{static_cast<std::uint32_t>(c_[c] + r_lo),
                      static_cast<std::uint32_t>(c_[c] + r_hi)};
  }

  /// Step entry point of the batched sweep scheduler (see
  /// mapper/batch_scheduler.hpp): identical to step(), named separately so
  /// the step-wise callers read as what they are — one search step of one
  /// in-flight read, interleaved with thousands of others.
  SaInterval count_step(SaInterval iv, std::uint8_t c) const noexcept {
    return step(iv, c);
  }

  /// Seeding decision shared by count() and the sweep scheduler: the
  /// interval a search of `pattern` starts from and (via `remaining`) how
  /// many leading codes are still unconsumed. A non-empty seed-table hit
  /// replaces the final k steps; every other case starts from the full
  /// interval with the whole pattern pending — so
  ///     iv = count_start(p, r); while (r > 0 && !iv.empty()) iv = step(iv, p[--r]);
  /// is byte-identical to count().
  SaInterval count_start(std::span<const std::uint8_t> pattern,
                         std::size_t& remaining) const noexcept {
    const unsigned k = seed_table_ ? seed_table_->k() : 0;
    if (k != 0 && pattern.size() >= k) {
      if (const auto seed = seed_table_->lookup(pattern.last(k));
          seed && !seed->empty()) {
        remaining = pattern.size() - k;
        return *seed;
      }
    }
    remaining = pattern.size();
    return full_interval();
  }

  /// Software-prefetches the Occ-backend storage a subsequent
  /// step(iv, c) will touch. A no-op for backends without address-
  /// computable rank storage (the RRR wavelet tree's descent is data-
  /// dependent); checkpointed backends pull both bounds' cache lines.
  void prefetch_step(SaInterval iv) const noexcept {
    if constexpr (requires(const Occ& occ) { occ.prefetch(std::size_t{}); }) {
      occ_backend_.prefetch(iv.lo <= bwt_.primary ? iv.lo : iv.lo - 1);
      occ_backend_.prefetch(iv.hi <= bwt_.primary ? iv.hi : iv.hi - 1);
    }
  }

  /// Sentinel adjustment applied to a BW-matrix row before it reaches the
  /// Occ backend (exposed for the batched scheduler's bulk-rank path,
  /// which feeds backends directly).
  std::size_t occ_row(std::size_t row) const noexcept {
    return row <= bwt_.primary ? row : row - 1;
  }

  /// Backward search of a full pattern (codes 0..3). When a k-mer seed
  /// table is attached and the pattern's final k codes hit a non-empty
  /// entry, the first k steps are skipped outright; any other case —
  /// no table, short pattern, out-of-alphabet code, absent k-mer — falls
  /// back to the classic recurrence. Because a non-empty table entry IS
  /// the interval the recurrence would reach after those k steps (no early
  /// exit can have fired: intervals only shrink), the result is
  /// byte-identical to count_unseeded() in every case.
  SaInterval count(std::span<const std::uint8_t> pattern) const noexcept {
    std::size_t remaining = 0;
    SaInterval iv = count_start(pattern, remaining);
    while (remaining > 0 && !iv.empty()) {
      iv = step(iv, pattern[--remaining]);
    }
    return iv;
  }

  /// The classic full recurrence from the last base. Stops early when the
  /// interval empties — the property the paper exploits for non-mapping
  /// reads. Returns the final interval.
  SaInterval count_unseeded(std::span<const std::uint8_t> pattern) const noexcept {
    SaInterval iv = full_interval();
    for (std::size_t k = pattern.size(); k-- > 0;) {
      iv = step(iv, pattern[k]);
      if (iv.empty()) break;
    }
    return iv;
  }

  /// Text positions for an interval, via the host-resident suffix array.
  std::vector<std::uint32_t> locate(SaInterval iv) const {
    std::vector<std::uint32_t> positions;
    if (iv.empty()) return positions;
    positions.reserve(iv.count());
    for (std::uint32_t row = iv.lo; row < iv.hi; ++row) {
      positions.push_back(sa_[row]);
    }
    return positions;
  }

  std::vector<std::uint32_t> locate(std::span<const std::uint8_t> pattern) const {
    return locate(count(pattern));
  }

  /// Forward-strand and reverse-complement intervals for one read — the
  /// pair of searches the FPGA kernel executes concurrently.
  std::pair<SaInterval, SaInterval> count_both_strands(
      std::span<const std::uint8_t> pattern) const {
    const auto rc = dna_reverse_complement(pattern);
    return {count(pattern), count(rc)};
  }

  const Bwt& bwt() const noexcept { return bwt_; }
  const FlatArray<std::uint32_t>& suffix_array() const noexcept { return sa_; }
  const Occ& occ_backend() const noexcept { return occ_backend_; }

  /// Attaches (or detaches, with nullptr) a k-mer seed table. Shared so
  /// copies of the index and the archive loader can alias one table.
  void set_seed_table(std::shared_ptr<const KmerSeedTable> table) noexcept {
    seed_table_ = (table && table->enabled()) ? std::move(table) : nullptr;
  }

  /// The attached seed table, or nullptr when searches run unseeded.
  const KmerSeedTable* seed_table() const noexcept { return seed_table_.get(); }
  std::shared_ptr<const KmerSeedTable> shared_seed_table() const noexcept {
    return seed_table_;
  }

  /// Builds and attaches a seed table for this index from its own text and
  /// suffix array (requested k capped by reference size; 0 disables).
  void build_seed_table(std::span<const std::uint8_t> text, unsigned requested_k) {
    if (text.size() != size()) {
      throw std::invalid_argument("FmIndex::build_seed_table: text size mismatch");
    }
    set_seed_table(std::make_shared<const KmerSeedTable>(
        KmerSeedTable::build(text, sa_, requested_k)));
  }

  /// Bytes of the succinct structure (Occ backend only — what travels to
  /// the device). SA and raw BWT stay on the host.
  std::size_t occ_size_in_bytes() const noexcept { return occ_backend_.size_in_bytes(); }

  /// Binary (de)serialization of the complete index (BWT + SA + encoded
  /// Occ backend); requires Occ::save / Occ::load.
  void save(ByteWriter& writer) const {
    writer.u32(bwt_.text_length);
    writer.u32(bwt_.primary);
    writer.vec_u8(bwt_.symbols);
    writer.vec_u32(sa_);
    occ_backend_.save(writer);
  }
  static FmIndex load(ByteReader& reader) {
    FmIndex index;
    index.bwt_.text_length = reader.u32();
    index.bwt_.primary = reader.u32();
    index.bwt_.symbols = reader.vec_u8();
    index.sa_ = reader.vec_u32();
    if (index.bwt_.symbols.size() != index.bwt_.text_length ||
        index.sa_.size() != static_cast<std::size_t>(index.bwt_.text_length) + 1) {
      throw IoError("FmIndex::load: inconsistent sizes");
    }
    index.occ_backend_ = Occ::load(reader);
    index.init_c_array();
    return index;
  }

 private:
  void init_c_array() {
    std::array<std::uint32_t, 4> counts{};
    for (std::uint8_t c : bwt_.symbols) ++counts[c];
    std::uint32_t sum = 1;  // the sentinel precedes every base
    for (unsigned c = 0; c < 4; ++c) {
      c_[c] = sum;
      sum += counts[c];
    }
  }

  Bwt bwt_;
  FlatArray<std::uint32_t> sa_;
  Occ occ_backend_{};
  std::array<std::uint32_t, 4> c_{};
  std::shared_ptr<const KmerSeedTable> seed_table_;  // not in save(): the
                                                     // archive carries it as
                                                     // its own section

};

}  // namespace bwaver
