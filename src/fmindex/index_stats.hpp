// Index statistics and size accounting.
//
// Computes the quantities the paper's characterization section (Figs. 5-6)
// reasons about: zero-order empirical entropy of the BWT, run structure,
// per-field size breakdown of the RRR structure (class array, partial sums,
// offset bit-vector, offset sums, shared tables), compression vs. the
// 1 byte/char raw BWT, and whether the structure fits the modeled device.
// Backs the `bwaver stats` CLI subcommand.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "fmindex/fm_index.hpp"
#include "fmindex/occ_backends.hpp"
#include "fpga/device_spec.hpp"

namespace bwaver {

struct SequenceStats {
  std::uint64_t length = 0;
  std::array<std::uint64_t, 4> base_counts{};  ///< A/C/G/T
  double gc_content = 0.0;
  double entropy_bits_per_symbol = 0.0;  ///< zero-order, <= 2 for DNA
  std::uint64_t runs = 0;                ///< maximal equal-symbol runs
  double mean_run_length = 0.0;
};

struct RrrSizeBreakdown {
  std::uint64_t classes_bytes = 0;
  std::uint64_t partial_sum_bytes = 0;
  std::uint64_t offset_sum_bytes = 0;
  std::uint64_t offsets_bytes = 0;      ///< the lambda/8 term
  std::uint64_t shared_table_bytes = 0;
  std::uint64_t node_overhead_bytes = 0;

  std::uint64_t total_bytes() const noexcept {
    return classes_bytes + partial_sum_bytes + offset_sum_bytes + offsets_bytes +
           shared_table_bytes + node_overhead_bytes;
  }
};

struct IndexStats {
  SequenceStats bwt;          ///< statistics of the BWT sequence
  SequenceStats text;         ///< statistics of the original text
  RrrSizeBreakdown structure;
  double bytes_per_base = 0.0;
  double saved_vs_raw = 0.0;  ///< 1 - bytes_per_base (raw BWT = 1 B/char)
  std::uint64_t suffix_array_bytes = 0;
  bool fits_on_device = false;
  std::uint64_t device_capacity_bytes = 0;
};

/// Statistics of an arbitrary 2-bit code sequence.
SequenceStats compute_sequence_stats(std::span<const std::uint8_t> codes);

/// Full report for a built index under a device model.
IndexStats compute_index_stats(const FmIndex<RrrWaveletOcc>& index,
                               const DeviceSpec& device = DeviceSpec{});

/// Human-readable rendering of the report.
std::string format_index_stats(const IndexStats& stats);

}  // namespace bwaver
