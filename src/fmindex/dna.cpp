#include "fmindex/dna.hpp"

#include <array>
#include <stdexcept>

namespace bwaver {

namespace {
constexpr std::array<std::uint8_t, 256> make_encode_table() {
  std::array<std::uint8_t, 256> table{};
  for (auto& entry : table) entry = kDnaInvalid;
  table['A'] = table['a'] = 0;
  table['C'] = table['c'] = 1;
  table['G'] = table['g'] = 2;
  table['T'] = table['t'] = 3;
  table['U'] = table['u'] = 3;
  return table;
}
constexpr std::array<std::uint8_t, 256> kEncodeTable = make_encode_table();
constexpr char kDecodeTable[4] = {'A', 'C', 'G', 'T'};
}  // namespace

std::uint8_t dna_encode(char base) noexcept {
  return kEncodeTable[static_cast<unsigned char>(base)];
}

char dna_decode(std::uint8_t code) noexcept { return kDecodeTable[code & 3]; }

std::vector<std::uint8_t> dna_encode_string(std::string_view bases,
                                            bool substitute_invalid) {
  std::vector<std::uint8_t> codes;
  codes.reserve(bases.size());
  for (std::size_t i = 0; i < bases.size(); ++i) {
    std::uint8_t code = dna_encode(bases[i]);
    if (code == kDnaInvalid) {
      if (!substitute_invalid) {
        throw std::invalid_argument("dna_encode_string: invalid base '" +
                                    std::string(1, bases[i]) + "' at position " +
                                    std::to_string(i));
      }
      // Deterministic position-seeded substitution (splitmix-style hash).
      std::uint64_t h = (i + 1) * 0x9e3779b97f4a7c15ULL;
      h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
      code = static_cast<std::uint8_t>((h >> 61) & 3);
    }
    codes.push_back(code);
  }
  return codes;
}

std::string dna_decode_string(std::span<const std::uint8_t> codes) {
  std::string bases;
  bases.reserve(codes.size());
  for (std::uint8_t code : codes) bases.push_back(dna_decode(code));
  return bases;
}

std::vector<std::uint8_t> dna_reverse_complement(std::span<const std::uint8_t> codes) {
  std::vector<std::uint8_t> rc;
  rc.reserve(codes.size());
  for (std::size_t i = codes.size(); i-- > 0;) {
    rc.push_back(dna_complement(codes[i]));
  }
  return rc;
}

std::string dna_reverse_complement_string(std::string_view bases) {
  auto codes = dna_encode_string(bases);
  return dna_decode_string(dna_reverse_complement(codes));
}

}  // namespace bwaver
