#include "fmindex/epr_occ.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

namespace bwaver {

EprOcc::EprOcc(std::span<const std::uint8_t> bwt, const kernels::RankKernel* kernel)
    : n_(bwt.size()), kernel_(kernel != nullptr ? kernel : &kernels::active_kernel()) {
  const std::size_t data_blocks = (n_ + kBasesPerBlock - 1) / kBasesPerBlock;
  std::vector<Block> blocks(data_blocks + 1);
  std::array<std::uint32_t, 4> running{};
  for (std::size_t b = 0; b < data_blocks; ++b) {
    Block& block = blocks[b];
    block.cum = running;
    const std::size_t base = b * kBasesPerBlock;
    const std::size_t count = std::min<std::size_t>(kBasesPerBlock, n_ - base);
    for (std::size_t k = 0; k < count; ++k) {
      const std::uint8_t code = bwt[base + k] & 3;
      block.planes[k >> 6] |= static_cast<std::uint64_t>(code & 1) << (k & 63);
      block.planes[2 + (k >> 6)] |= static_cast<std::uint64_t>(code >> 1) << (k & 63);
      ++running[code];
    }
  }
  blocks[data_blocks].cum = running;
  blocks_ = std::move(blocks);
}

void EprOcc::save(ByteWriter& writer) const {
  writer.u64(n_);
  for (const Block& block : blocks_) {
    for (std::uint32_t count : block.cum) writer.u32(count);
    for (std::uint64_t plane : block.planes) writer.u64(plane);
  }
}

EprOcc EprOcc::load(ByteReader& reader) {
  EprOcc occ;
  occ.n_ = reader.u64();
  occ.kernel_ = &kernels::active_kernel();
  std::vector<Block> blocks(block_count_for(occ.n_));
  for (Block& block : blocks) {
    for (std::uint32_t& count : block.cum) count = reader.u32();
    for (std::uint64_t& plane : block.planes) plane = reader.u64();
  }
  occ.blocks_ = std::move(blocks);
  return occ;
}

void EprOcc::save_flat(ByteWriter& writer) const {
  writer.u64(n_);
  writer.pad_to(64);
  writer.raw_u8(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(blocks_.data()), blocks_.bytes()));
}

EprOcc EprOcc::load_flat(ByteReader& reader, bool adopt) {
  EprOcc occ;
  occ.n_ = reader.u64();
  occ.kernel_ = &kernels::active_kernel();
  const std::size_t count = block_count_for(occ.n_);
  reader.align_to(64);
  const auto bytes = reader.span_u8(count * sizeof(Block));
  if (adopt &&
      reinterpret_cast<std::uintptr_t>(bytes.data()) % alignof(Block) == 0) {
    occ.blocks_ = FlatArray<Block>::view_of(
        {reinterpret_cast<const Block*>(bytes.data()), count});
  } else {
    std::vector<Block> blocks(count);
    std::memcpy(blocks.data(), bytes.data(), bytes.size());
    occ.blocks_ = std::move(blocks);
  }
  return occ;
}

EprOcc EprOcc::view_of(const EprOcc& other) {
  EprOcc occ;
  occ.n_ = other.n_;
  occ.kernel_ = other.kernel_;
  occ.blocks_ = FlatArray<Block>::view_of(
      std::span<const Block>(other.blocks_.data(), other.blocks_.size()));
  return occ;
}

}  // namespace bwaver
