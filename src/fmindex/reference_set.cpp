#include "fmindex/reference_set.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace bwaver {

void ReferenceSet::add(const std::string& name, std::span<const std::uint8_t> codes) {
  if (codes.empty()) {
    throw std::invalid_argument("ReferenceSet: empty sequence '" + name + "'");
  }
  if (text_.size() + codes.size() > std::numeric_limits<std::uint32_t>::max() / 2) {
    throw std::length_error("ReferenceSet: concatenation exceeds 32-bit coordinates");
  }
  Sequence sequence;
  sequence.name = name;
  sequence.offset = static_cast<std::uint32_t>(text_.size());
  sequence.length = static_cast<std::uint32_t>(codes.size());
  sequences_.push_back(std::move(sequence));
  text_.append(codes);
}

ReferenceSet ReferenceSet::from_parts(std::vector<Sequence> sequences,
                                      FlatArray<std::uint8_t> text) {
  validate_table(sequences, text.size());
  ReferenceSet set;
  set.sequences_ = std::move(sequences);
  set.text_ = std::move(text);
  return set;
}

ReferenceSet::LocalPosition ReferenceSet::resolve(std::uint32_t global_pos) const {
  if (global_pos >= text_.size()) {
    throw std::out_of_range("ReferenceSet::resolve: position past end");
  }
  // Binary search for the last sequence starting at or before global_pos.
  auto it = std::upper_bound(
      sequences_.begin(), sequences_.end(), global_pos,
      [](std::uint32_t pos, const Sequence& seq) { return pos < seq.offset; });
  const std::size_t index = static_cast<std::size_t>(it - sequences_.begin()) - 1;
  return LocalPosition{static_cast<std::uint32_t>(index),
                       global_pos - sequences_[index].offset};
}

bool ReferenceSet::span_within_sequence(std::uint32_t global_pos,
                                        std::uint32_t length) const noexcept {
  if (global_pos + length > text_.size() || length == 0) return false;
  auto it = std::upper_bound(
      sequences_.begin(), sequences_.end(), global_pos,
      [](std::uint32_t pos, const Sequence& seq) { return pos < seq.offset; });
  const Sequence& seq = *(it - 1);
  return global_pos + length <= seq.offset + seq.length;
}

std::optional<ReferenceSet::LocalPosition> ReferenceSet::resolve_span(
    std::uint32_t global_pos, std::uint32_t length) const {
  if (!span_within_sequence(global_pos, length)) return std::nullopt;
  return resolve(global_pos);
}

void ReferenceSet::save(ByteWriter& writer) const {
  save_table(writer);
  writer.vec_u8(text_);
}

ReferenceSet ReferenceSet::load(ByteReader& reader) {
  ReferenceSet set;
  set.sequences_ = load_table(reader);
  set.text_ = reader.vec_u8();
  validate_table(set.sequences_, set.text_.size());
  return set;
}

void ReferenceSet::save_table(ByteWriter& writer) const {
  writer.u64(sequences_.size());
  for (const Sequence& seq : sequences_) {
    writer.str(seq.name);
    writer.u32(seq.offset);
    writer.u32(seq.length);
  }
}

std::vector<ReferenceSet::Sequence> ReferenceSet::load_table(ByteReader& reader) {
  const std::uint64_t count = reader.u64();
  std::vector<Sequence> sequences;
  sequences.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Sequence seq;
    seq.name = reader.str();
    seq.offset = reader.u32();
    seq.length = reader.u32();
    sequences.push_back(std::move(seq));
  }
  return sequences;
}

void ReferenceSet::validate_table(const std::vector<Sequence>& sequences,
                                  std::size_t text_size) {
  // Structural validation: contiguous, ordered, covering the text.
  std::uint64_t cursor = 0;
  for (const Sequence& seq : sequences) {
    if (seq.offset != cursor || seq.length == 0) {
      throw IoError("ReferenceSet::load: corrupt sequence table");
    }
    cursor += seq.length;
  }
  if (cursor != text_size) {
    throw IoError("ReferenceSet::load: sequence table does not cover text");
  }
}

}  // namespace bwaver
