// K-mer seed table: precomputed SA intervals for every DNA k-mer.
//
// Backward search consumes a pattern right-to-left, so the first k steps of
// every search depend only on the pattern's final k bases. Precomputing the
// SA interval of all 4^k k-mers lets a search start k steps in — the steps
// that dominate runtime, because early intervals are wide and their two occ
// lookups touch distant superblocks (EPR-dictionaries and Snytsar make the
// same observation for CPU FM-index search).
//
// The table is built with a single ordered scan of the suffix array: rows
// whose suffixes share a first-k prefix are contiguous in SA order, so each
// k-mer's interval is one [run-start, run-end) range; suffixes shorter than
// k never interrupt a run (any row between two rows sharing a k-prefix also
// carries that prefix). Absent k-mers keep an empty interval, which callers
// treat as "fall back to the classic recurrence" — that rule is what makes
// the seeded search byte-identical to the unseeded one (see FmIndex::count).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fmindex/sa_interval.hpp"
#include "io/byte_io.hpp"
#include "util/flat_array.hpp"

namespace bwaver {

class KmerSeedTable {
 public:
  /// Hard upper bound on k: 4^15 entries is already 8 GiB of intervals.
  static constexpr unsigned kMaxK = 15;

  /// Default seed length — 4^12 entries (128 MiB of intervals), the point
  /// where table size is still dwarfed by a mammalian-chromosome index but
  /// a third of a short read's steps are precomputed.
  static constexpr unsigned kDefaultK = 12;

  KmerSeedTable() = default;

  /// Largest usable k <= requested_k for a text of `text_length` bases:
  /// caps 4^k at max(4096, 16 * text_length) so tiny (test) references get
  /// proportionally small tables while anything E. coli-sized or larger
  /// still gets the full requested k. Returns 0 when requested_k is 0
  /// (seeding disabled).
  static unsigned capped_k(unsigned requested_k, std::size_t text_length);

  /// Builds the table over the 2-bit-coded text and its suffix array
  /// (sa.size() == text.size() + 1, sentinel row included). `requested_k`
  /// is capped via capped_k(); a cap of 0 yields an empty table (k() == 0).
  static KmerSeedTable build(std::span<const std::uint8_t> text,
                             std::span<const std::uint32_t> sa,
                             unsigned requested_k);

  /// Seed length; 0 means the table is absent/disabled.
  unsigned k() const noexcept { return k_; }
  bool enabled() const noexcept { return k_ != 0; }

  /// Number of table entries (4^k).
  std::size_t entries() const noexcept { return lo_.size(); }

  /// Interval of the k-mer `kmer` (exactly k() codes, pattern order). An
  /// empty interval means the k-mer does not occur — callers must fall back
  /// to the full recurrence. Returns nullopt for out-of-alphabet codes
  /// (e.g. an un-substituted N) or a length mismatch.
  std::optional<SaInterval> lookup(std::span<const std::uint8_t> kmer) const noexcept {
    if (k_ == 0 || kmer.size() != k_) return std::nullopt;
    std::uint32_t code = 0;
    for (const std::uint8_t c : kmer) {
      if (c > 3) return std::nullopt;
      code = (code << 2) | c;
    }
    return SaInterval{lo_[code], hi_[code]};
  }

  /// Payload bytes of the two interval arrays (heap or mapped).
  std::size_t size_in_bytes() const noexcept {
    return (lo_.size() + hi_.size()) * sizeof(std::uint32_t) + sizeof(std::uint32_t);
  }

  /// Bytes actually on the heap (0 payload for a mapped view).
  std::size_t heap_size_in_bytes() const noexcept {
    return lo_.heap_bytes() + hi_.heap_bytes() + sizeof(std::uint32_t);
  }

  void save(ByteWriter& writer) const;
  static KmerSeedTable load(ByteReader& reader);

  /// Flat 64-byte-aligned layout (archive format v3); adopt=true borrows
  /// both interval arrays from the reader's backing buffer.
  void save_flat(ByteWriter& writer) const;
  static KmerSeedTable load_flat(ByteReader& reader, bool adopt);

 private:
  friend class KmerTableBuilder;

  void validate() const;

  unsigned k_ = 0;
  FlatArray<std::uint32_t> lo_;  // one interval per k-mer code
  FlatArray<std::uint32_t> hi_;
};

/// Incremental row-feed construction of a KmerSeedTable.
///
/// The blockwise index constructor recovers suffix-array rows in ascending
/// row order while streaming them to disk, never holding the whole SA — so
/// it cannot call KmerSeedTable::build. Feeding every (row, position) pair
/// in ascending row order performs the same run-recording scan and yields a
/// table identical to build() over the full SA (same code definition, same
/// short-suffix skip rule); the equivalence is pinned by fm_kmer_table_test.
/// Each feed re-reads k bases (O(k)) instead of using build()'s rolling
/// code array, trading a 4 bytes/base side table for bounded memory.
class KmerTableBuilder {
 public:
  /// `requested_k` is capped via KmerSeedTable::capped_k, like build().
  KmerTableBuilder(std::span<const std::uint8_t> text, unsigned requested_k);

  /// Active after construction iff the capped k is usable for this text;
  /// when false, feed() is a no-op and finish() returns a disabled table.
  bool enabled() const noexcept { return k_ != 0; }
  unsigned k() const noexcept { return k_; }

  /// Records suffix-array row `row` holding text position `pos`. Rows MUST
  /// arrive in ascending row order (gaps from short suffixes are fine).
  void feed(std::uint32_t row, std::uint32_t pos) noexcept {
    if (k_ == 0 || pos + k_ > text_.size()) return;
    std::uint32_t code = 0;
    for (unsigned i = 0; i < k_; ++i) code = (code << 2) | (text_[pos + i] & 3);
    if (code != prev_) {
      lo_[code] = row;
      prev_ = code;
    }
    hi_[code] = row + 1;
  }

  KmerSeedTable finish();

 private:
  std::span<const std::uint8_t> text_;
  unsigned k_ = 0;
  std::uint64_t prev_ = ~std::uint64_t{0};
  std::vector<std::uint32_t> lo_;
  std::vector<std::uint32_t> hi_;
};

}  // namespace bwaver
