// Bidirectional FM-index (2BWT / Lam et al.; the pairing Pockrandt's EPR
// dictionaries were built for): a forward index over the text and a second
// index over the reversed text, advanced in lockstep so a matched pattern
// can be extended by one character on EITHER side in O(occ) time.
//
// A BiInterval carries the SA interval of the matched pattern P in the
// forward index together with the SA interval of reverse(P) in the
// reverse index; both always have equal width. extend_left(c) is the
// classic backward step on the forward index plus a synchronization of the
// reverse interval: the rows of the reverse interval are ordered by the
// character FOLLOWING reverse(P), which is exactly the character PRECEDING
// P — so the new reverse interval starts past the sentinel (if P prefixes
// the text) plus the counts of all smaller bases, computed from the same
// occ_all() answers the backward step already needed. extend_right is the
// mirror image through the reverse index.
//
// On top of the pair, this header runs precomputed SEARCH SCHEMES for
// k <= 2 mismatches (pigeonhole partitions extending from the middle
// outward): the pattern splits into k+1 parts, each scheme anchors one part
// exactly (zero errors) before any branching starts, and the per-stage
// lower/upper error bounds make the schemes' hit sets disjoint and jointly
// exhaustive — the same set of modified strings the naive O((3p)^k)
// branch-everywhere search enumerates, at a fraction of the executed steps.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "fmindex/approx_search.hpp"
#include "fmindex/fm_index.hpp"

namespace bwaver {

/// Synchronized interval pair: `fwd` over the forward index (the interval
/// of P), `rev` over the reverse index (the interval of reverse(P)).
struct BiInterval {
  SaInterval fwd;
  SaInterval rev;
  bool empty() const noexcept { return fwd.empty(); }
  std::uint32_t count() const noexcept { return fwd.count(); }
};

/// One pigeonhole search scheme: parts are searched in `order`, and after
/// finishing the stage-s part the cumulative error count must lie in
/// [lower[s], upper[s]] (upper is enforced continuously, per character;
/// lower at part completion). The first searched part of every scheme has
/// upper[0] == 0 — an exact anchor, which is where the speedup comes from.
struct SearchScheme {
  std::uint8_t parts = 1;
  std::array<std::uint8_t, 3> order{};
  std::array<std::uint8_t, 3> lower{};
  std::array<std::uint8_t, 3> upper{};
};

/// The scheme set covering EXACTLY k mismatches (k in [0, 2]): every
/// weight-k error distribution over the k+1 parts is produced by exactly
/// one scheme, so per-stratum hit sets match the branch search's without
/// deduplication. Throws for k > 2.
std::span<const SearchScheme> schemes_for_exact(unsigned k);

template <typename Occ>
class BidirFmIndex {
 public:
  /// Borrows `fwd` (must outlive this) and builds the reverse index over
  /// the reversed text with the same Occ builder. `text` must be the exact
  /// 2-bit-coded text `fwd` indexes.
  BidirFmIndex(const FmIndex<Occ>& fwd, std::span<const std::uint8_t> text,
               const typename FmIndex<Occ>::OccBuilder& builder)
      : fwd_(&fwd) {
    if (text.size() != fwd.size()) {
      throw std::invalid_argument("BidirFmIndex: text/index size mismatch");
    }
    std::vector<std::uint8_t> reversed(text.rbegin(), text.rend());
    rev_ = std::make_unique<FmIndex<Occ>>(
        std::span<const std::uint8_t>(reversed), builder);
  }

  /// Owning variant (tests, standalone use): builds both indexes.
  BidirFmIndex(std::span<const std::uint8_t> text,
               const typename FmIndex<Occ>::OccBuilder& builder)
      : owned_fwd_(std::make_unique<FmIndex<Occ>>(text, builder)),
        fwd_(owned_fwd_.get()) {
    std::vector<std::uint8_t> reversed(text.rbegin(), text.rend());
    rev_ = std::make_unique<FmIndex<Occ>>(
        std::span<const std::uint8_t>(reversed), builder);
  }

  const FmIndex<Occ>& forward() const noexcept { return *fwd_; }
  const FmIndex<Occ>& reverse() const noexcept { return *rev_; }
  std::size_t size() const noexcept { return fwd_->size(); }

  BiInterval full_interval() const noexcept {
    return BiInterval{fwd_->full_interval(), rev_->full_interval()};
  }

  /// Prepend `c` to the matched pattern (P -> cP). One backward step on the
  /// forward index; the reverse interval shifts by the sentinel (present
  /// iff P prefixes the text) plus the counts of all bases smaller than c,
  /// both read off the occ_all() answers the step computes anyway.
  BiInterval extend_left(BiInterval iv, std::uint8_t c) const noexcept {
    return extend(*fwd_, iv.fwd, iv.rev, c);
  }

  /// Append `c` to the matched pattern (P -> Pc): the mirror image, a
  /// backward step of the REVERSE index extending reverse(P) to
  /// c·reverse(P) = reverse(Pc).
  BiInterval extend_right(BiInterval iv, std::uint8_t c) const noexcept {
    const BiInterval mirrored = extend(*rev_, iv.rev, iv.fwd, c);
    return BiInterval{mirrored.rev, mirrored.fwd};
  }

 private:
  /// The shared step: advances `main` (the interval in `index`) by c and
  /// synchronizes `other`. Returns {new main, new other}.
  static BiInterval extend(const FmIndex<Occ>& index, SaInterval main,
                           SaInterval other, std::uint8_t c) noexcept {
    const auto lo_occ = index.occ_all(main.lo);
    const auto hi_occ = index.occ_all(main.hi);
    const std::uint32_t primary = index.bwt().primary;
    std::uint32_t shift = (main.lo <= primary && primary < main.hi) ? 1 : 0;
    for (std::uint8_t a = 0; a < c; ++a) shift += hi_occ[a] - lo_occ[a];
    const std::uint32_t width = hi_occ[c] - lo_occ[c];
    BiInterval next;
    next.fwd.lo = index.c_array(c) + lo_occ[c];
    next.fwd.hi = next.fwd.lo + width;
    next.rev.lo = other.lo + shift;
    next.rev.hi = next.rev.lo + width;
    return next;
  }

  std::unique_ptr<FmIndex<Occ>> owned_fwd_;  ///< null when fwd_ is borrowed
  const FmIndex<Occ>* fwd_;
  std::unique_ptr<FmIndex<Occ>> rev_;
};

namespace detail {

/// Character-level descent of one search scheme. The matched pattern range
/// is [left, right); the part under stage `stage` extends it one character
/// at a time toward whichever side the part lies on.
template <typename Occ>
void scheme_descend(const BidirFmIndex<Occ>& index,
                    std::span<const std::uint8_t> pattern,
                    const SearchScheme& scheme,
                    std::span<const std::uint32_t> bounds, unsigned stage,
                    unsigned left, unsigned right, BiInterval iv,
                    unsigned errors, std::size_t hit_cap,
                    std::vector<ApproxHit>& hits, ApproxStats* stats) {
  const unsigned part = scheme.order[stage];
  const unsigned pstart = bounds[part];
  const unsigned pend = bounds[part + 1];
  if (pstart >= left && pend <= right) {  // part fully matched
    if (errors < scheme.lower[stage]) return;  // another scheme's stratum
    if (stage + 1 == scheme.parts) {
      if (hits.size() >= hit_cap) {
        if (stats) stats->truncated = true;
        return;
      }
      hits.push_back(ApproxHit{iv.fwd, static_cast<std::uint8_t>(errors)});
      if (stats) ++stats->hits;
      return;
    }
    scheme_descend(index, pattern, scheme, bounds, stage + 1, left, right, iv,
                   errors, hit_cap, hits, stats);
    return;
  }
  const bool go_left = pstart < left;
  const unsigned pos = go_left ? left - 1 : right;
  const std::uint8_t expected = pattern[pos];
  for (std::uint8_t c = 0; c < 4; ++c) {
    const unsigned e = errors + (c != expected ? 1 : 0);
    if (e > scheme.upper[stage]) continue;
    const BiInterval next =
        go_left ? index.extend_left(iv, c) : index.extend_right(iv, c);
    if (stats) ++stats->steps_executed;
    if (next.empty()) {
      if (stats) ++stats->branches_pruned;
      continue;
    }
    scheme_descend(index, pattern, scheme, bounds, stage,
                   go_left ? left - 1 : left, go_left ? right : right + 1, next,
                   e, hit_cap, hits, stats);
  }
}

}  // namespace detail

/// All SA intervals (forward index) of strings at EXACTLY `k` mismatches
/// from `pattern`, found via the precomputed search schemes. Intervals are
/// disjoint and equal, as a set, to the exactly-k stratum of approx_count.
/// Patterns shorter than k+1 characters (no non-empty partition) fall back
/// to the branch recursion, filtered to the stratum.
template <typename Occ>
void scheme_count_exact(const BidirFmIndex<Occ>& index,
                        std::span<const std::uint8_t> pattern, unsigned k,
                        std::vector<ApproxHit>& hits, ApproxStats* stats = nullptr,
                        std::size_t hit_cap = kDefaultApproxHitCap) {
  if (pattern.empty()) return;
  const unsigned parts = k + 1;
  if (pattern.size() < parts) {
    std::vector<ApproxHit> all =
        approx_count(index.forward(), pattern, k, stats, hit_cap);
    for (const ApproxHit& hit : all) {
      if (hit.mismatches == k) hits.push_back(hit);
    }
    return;
  }
  std::array<std::uint32_t, 4> bounds{};
  for (unsigned i = 0; i <= parts; ++i) {
    bounds[i] = static_cast<std::uint32_t>(i * pattern.size() / parts);
  }
  for (const SearchScheme& scheme : schemes_for_exact(k)) {
    const unsigned first_end = bounds[scheme.order[0] + 1];
    detail::scheme_descend(index, pattern, scheme,
                           std::span<const std::uint32_t>(bounds.data(), parts + 1),
                           /*stage=*/0, /*left=*/first_end, /*right=*/first_end,
                           index.full_interval(), /*errors=*/0, hit_cap, hits,
                           stats);
  }
}

/// All hits within `max_mismatches` (strata 0..k concatenated) — the
/// scheme-mode equivalent of approx_count. Hit order differs from the
/// branch search; the interval SET per stratum is identical.
template <typename Occ>
std::vector<ApproxHit> scheme_count(const BidirFmIndex<Occ>& index,
                                    std::span<const std::uint8_t> pattern,
                                    unsigned max_mismatches,
                                    ApproxStats* stats = nullptr,
                                    std::size_t hit_cap = kDefaultApproxHitCap) {
  std::vector<ApproxHit> hits;
  for (unsigned k = 0; k <= max_mismatches; ++k) {
    scheme_count_exact(index, pattern, k, hits, stats, hit_cap);
  }
  return hits;
}

}  // namespace bwaver
