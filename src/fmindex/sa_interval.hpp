// Half-open suffix-array row interval — the unit of currency of backward
// search. Split out of fm_index.hpp so lightweight collaborators (the k-mer
// seed table, kernels, result plumbing) can name intervals without pulling
// in the full index template.
#pragma once

#include <cstdint>

namespace bwaver {

/// Half-open SA-row interval; empty() means the pattern does not occur.
struct SaInterval {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  bool empty() const noexcept { return lo >= hi; }
  std::uint32_t count() const noexcept { return empty() ? 0 : hi - lo; }
  friend bool operator==(const SaInterval&, const SaInterval&) = default;
};

}  // namespace bwaver
