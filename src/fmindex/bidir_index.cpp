#include "fmindex/bidir_index.hpp"

namespace bwaver {
namespace {

// Exactly-0: one part, matched exactly.
constexpr SearchScheme kSchemesK0[] = {
    {1, {0, 0, 0}, {0, 0, 0}, {0, 0, 0}},
};

// Exactly-1 over two parts: anchor part 0 then force the error into part 1,
// and vice versa. Distributions covered: (0,1) and (1,0).
constexpr SearchScheme kSchemesK1[] = {
    {2, {0, 1, 0}, {0, 1, 0}, {0, 1, 0}},
    {2, {1, 0, 0}, {0, 1, 0}, {0, 1, 0}},
};

// Exactly-2 over three parts. Each weight-2 error distribution over the
// parts appears in exactly one scheme (ranges are cumulative errors after
// each searched part):
//   S0 = {0,1,2} / [0,0] [0,2] [2,2] -> (0,2,0) (0,1,1) (0,0,2)
//   S1 = {1,0,2} / [0,0] [1,2] [2,2] -> (1,0,1) (2,0,0)
//   S2 = {2,1,0} / [0,0] [1,1] [2,2] -> (1,1,0)
// Union = all six weight-2 distributions, pairwise disjoint; every scheme
// opens with an exact part.
constexpr SearchScheme kSchemesK2[] = {
    {3, {0, 1, 2}, {0, 0, 2}, {0, 2, 2}},
    {3, {1, 0, 2}, {0, 1, 2}, {0, 2, 2}},
    {3, {2, 1, 0}, {0, 1, 2}, {0, 1, 2}},
};

}  // namespace

std::span<const SearchScheme> schemes_for_exact(unsigned k) {
  switch (k) {
    case 0:
      return kSchemesK0;
    case 1:
      return kSchemesK1;
    case 2:
      return kSchemesK2;
    default:
      throw std::invalid_argument(
          "schemes_for_exact: precomputed schemes cover k <= 2");
  }
}

}  // namespace bwaver
