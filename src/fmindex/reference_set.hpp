// Multi-sequence reference support.
//
// Real references are sets of chromosomes/contigs. Like BWA, we index their
// plain concatenation — the 2-bit DNA alphabet has no spare separator
// symbol — which means a match can spuriously straddle a boundary between
// two sequences; those hits must be filtered when intervals are resolved to
// positions. ReferenceSet owns the name/offset table, the global->local
// coordinate mapping, and that filter.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "io/byte_io.hpp"
#include "util/flat_array.hpp"

namespace bwaver {

class ReferenceSet {
 public:
  struct Sequence {
    std::string name;
    std::uint32_t offset = 0;  ///< start in the concatenated text
    std::uint32_t length = 0;
  };

  struct LocalPosition {
    std::uint32_t sequence_index = 0;
    std::uint32_t offset = 0;  ///< 0-based within the sequence
  };

  ReferenceSet() = default;

  /// Assembles a set from a pre-built sequence table and concatenated text
  /// (possibly a zero-copy view into a mapped archive). Performs the same
  /// structural validation as load(); throws IoError on mismatch.
  static ReferenceSet from_parts(std::vector<Sequence> sequences,
                                 FlatArray<std::uint8_t> text);

  /// Appends a sequence (2-bit codes are appended to the concatenation).
  void add(const std::string& name, std::span<const std::uint8_t> codes);

  std::size_t num_sequences() const noexcept { return sequences_.size(); }
  const std::vector<Sequence>& sequences() const noexcept { return sequences_; }
  const Sequence& sequence(std::size_t i) const { return sequences_.at(i); }

  /// The concatenated text the FM-index is built over. May be a zero-copy
  /// view into a mapped archive (see FlatArray::is_view()).
  const FlatArray<std::uint8_t>& concatenated() const noexcept { return text_; }
  std::size_t total_length() const noexcept { return text_.size(); }

  /// Maps a global position to (sequence, local offset). Throws
  /// std::out_of_range past the end.
  LocalPosition resolve(std::uint32_t global_pos) const;

  /// True iff [global_pos, global_pos + length) lies inside one sequence —
  /// the filter that discards matches straddling a concatenation boundary.
  bool span_within_sequence(std::uint32_t global_pos, std::uint32_t length) const noexcept;

  /// Resolve + filter in one step: nullopt for boundary-straddling spans.
  std::optional<LocalPosition> resolve_span(std::uint32_t global_pos,
                                            std::uint32_t length) const;

  void save(ByteWriter& writer) const;
  static ReferenceSet load(ByteReader& reader);

  /// (De)serializes the name/offset table alone — archive format v3 keeps
  /// the concatenated text in its own flat section (see from_parts).
  void save_table(ByteWriter& writer) const;
  static std::vector<Sequence> load_table(ByteReader& reader);

 private:
  static void validate_table(const std::vector<Sequence>& sequences,
                             std::size_t text_size);

  std::vector<Sequence> sequences_;
  FlatArray<std::uint8_t> text_;
};

}  // namespace bwaver
