// 2-bit DNA alphabet codec: A=0, C=1, G=2, T(=U)=3. The paper's structure
// is optimized for this 4-symbol alphabet ({A,C,G,T||U}); the sentinel '$'
// is handled out-of-band by the FM-index.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bwaver {

inline constexpr unsigned kDnaAlphabetSize = 4;
inline constexpr std::uint8_t kDnaInvalid = 0xff;

/// Code for one base; kDnaInvalid for anything outside ACGTU (case-insensitive).
std::uint8_t dna_encode(char base) noexcept;

/// Base character for a 2-bit code (code & 3).
char dna_decode(std::uint8_t code) noexcept;

/// Complement of a 2-bit code (A<->T, C<->G).
inline constexpr std::uint8_t dna_complement(std::uint8_t code) noexcept {
  return static_cast<std::uint8_t>(3 - (code & 3));
}

/// Encodes a string of bases. Throws std::invalid_argument on the first
/// non-ACGTU character unless `substitute_invalid` is true, in which case
/// invalid characters (e.g. N) are deterministically replaced by
/// pseudo-random bases seeded from their position — the standard trick for
/// feeding ambiguous reference bases to a 2-bit index.
std::vector<std::uint8_t> dna_encode_string(std::string_view bases,
                                            bool substitute_invalid = false);

/// Decodes a code sequence back to an ACGT string.
std::string dna_decode_string(std::span<const std::uint8_t> codes);

/// Reverse complement of a code sequence.
std::vector<std::uint8_t> dna_reverse_complement(std::span<const std::uint8_t> codes);

/// Reverse complement of a base string (ACGTU only).
std::string dna_reverse_complement_string(std::string_view bases);

}  // namespace bwaver
