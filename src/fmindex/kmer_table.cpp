#include "fmindex/kmer_table.hpp"

#include <algorithm>
#include <stdexcept>

namespace bwaver {

unsigned KmerSeedTable::capped_k(unsigned requested_k, std::size_t text_length) {
  if (requested_k == 0) return 0;
  const unsigned limit = std::min(requested_k, kMaxK);
  const std::size_t max_entries =
      std::max<std::size_t>(4096, 16 * text_length);
  unsigned k = 0;
  std::size_t entries = 1;
  while (k < limit && entries * 4 <= max_entries) {
    entries *= 4;
    ++k;
  }
  return k;
}

KmerSeedTable KmerSeedTable::build(std::span<const std::uint8_t> text,
                                   std::span<const std::uint32_t> sa,
                                   unsigned requested_k) {
  if (sa.size() != text.size() + 1) {
    throw std::invalid_argument("KmerSeedTable::build: SA/text size mismatch");
  }
  KmerSeedTable table;
  const unsigned k = capped_k(requested_k, text.size());
  if (k == 0 || text.size() < k) return table;
  table.k_ = k;
  const std::size_t entries = std::size_t{1} << (2 * k);
  std::vector<std::uint32_t> lo(entries, 0);
  std::vector<std::uint32_t> hi(entries, 0);

  // Rolling k-mer codes of every text position, so the SA scan below does
  // O(1) work per row instead of re-reading k bases.
  const std::uint32_t mask =
      k < 16 ? (std::uint32_t{1} << (2 * k)) - 1 : ~std::uint32_t{0};
  std::vector<std::uint32_t> codes(text.size() - k + 1);
  std::uint32_t rolling = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    rolling = ((rolling << 2) | (text[i] & 3)) & mask;
    if (i + 1 >= k) codes[i + 1 - k] = rolling;
  }

  // Rows sharing a first-k suffix prefix are contiguous in SA order; record
  // each run as that k-mer's interval. Rows whose suffix is shorter than k
  // (including the sentinel row) sit outside runs and are skipped.
  std::uint64_t prev = ~std::uint64_t{0};
  for (std::size_t row = 0; row < sa.size(); ++row) {
    const std::size_t pos = sa[row];
    if (pos + k > text.size()) continue;
    const std::uint32_t code = codes[pos];
    if (code != prev) {
      lo[code] = static_cast<std::uint32_t>(row);
      prev = code;
    }
    hi[code] = static_cast<std::uint32_t>(row + 1);
  }
  table.lo_ = std::move(lo);
  table.hi_ = std::move(hi);
  return table;
}

void KmerSeedTable::save(ByteWriter& writer) const {
  writer.u32(k_);
  writer.vec_u32(lo_);
  writer.vec_u32(hi_);
}

KmerSeedTable KmerSeedTable::load(ByteReader& reader) {
  KmerSeedTable table;
  table.k_ = reader.u32();
  table.lo_ = reader.vec_u32();
  table.hi_ = reader.vec_u32();
  table.validate();
  return table;
}

void KmerSeedTable::save_flat(ByteWriter& writer) const {
  writer.u32(k_);
  writer.u64(lo_.size());
  writer.pad_to(64);
  writer.raw_u32(lo_);
  writer.u64(hi_.size());
  writer.pad_to(64);
  writer.raw_u32(hi_);
}

KmerSeedTable KmerSeedTable::load_flat(ByteReader& reader, bool adopt) {
  KmerSeedTable table;
  table.k_ = reader.u32();
  const auto read_array = [&reader, adopt]() {
    const std::uint64_t count = reader.u64();
    reader.align_to(64);
    const auto values = reader.span_u32(count);
    if (adopt) return FlatArray<std::uint32_t>::view_of(values);
    return FlatArray<std::uint32_t>(
        std::vector<std::uint32_t>(values.begin(), values.end()));
  };
  table.lo_ = read_array();
  table.hi_ = read_array();
  table.validate();
  return table;
}

KmerTableBuilder::KmerTableBuilder(std::span<const std::uint8_t> text, unsigned requested_k)
    : text_(text), k_(KmerSeedTable::capped_k(requested_k, text.size())) {
  if (k_ != 0 && text.size() < k_) k_ = 0;  // build()'s short-text rule
  if (k_ != 0) {
    const std::size_t entries = std::size_t{1} << (2 * k_);
    lo_.assign(entries, 0);
    hi_.assign(entries, 0);
  }
}

KmerSeedTable KmerTableBuilder::finish() {
  KmerSeedTable table;
  if (k_ == 0) return table;
  table.k_ = k_;
  table.lo_ = std::move(lo_);
  table.hi_ = std::move(hi_);
  return table;
}

void KmerSeedTable::validate() const {
  if (k_ > kMaxK) throw IoError("KmerSeedTable::load: corrupt k");
  const std::size_t expected = k_ == 0 ? 0 : std::size_t{1} << (2 * k_);
  if (lo_.size() != expected || hi_.size() != expected) {
    throw IoError("KmerSeedTable::load: entry count does not match k");
  }
}

}  // namespace bwaver
