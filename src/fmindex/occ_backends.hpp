// Occurrence-count (Occ) backends for the FM-index.
//
// All backends answer rank(c, i) = occurrences of code c in the *squeezed*
// BWT prefix [0, i) — the FmIndex layer handles the sentinel adjustment.
//
//   * RrrWaveletOcc   — the paper's structure: wavelet tree of RRR vectors
//                       with shared global tables (BWaveR proper);
//   * PlainWaveletOcc — wavelet tree of uncompressed bit-vectors with
//                       two-level rank directories (ablation);
//   * SampledOcc      — Bowtie-style 2-bit-packed BWT with checkpointed
//                       per-symbol counters and popcount scanning (the
//                       "re-sampling of the index data" design that CPU
//                       tools use, per the paper's introduction).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "succinct/header_body_vector.hpp"
#include "succinct/huffman_wavelet_tree.hpp"
#include "succinct/rank_support.hpp"
#include "succinct/rrr_vector.hpp"
#include "succinct/wavelet_tree.hpp"

namespace bwaver {

class RrrWaveletOcc {
 public:
  RrrWaveletOcc() = default;
  RrrWaveletOcc(std::span<const std::uint8_t> bwt, RrrParams params)
      : params_(params),
        tree_(bwt, kDnaAlphabetSizeLocal,
              [params](const BitVector& bits) { return RrrVector(bits, params); }) {}

  std::size_t rank(std::uint8_t c, std::size_t i) const noexcept {
    return tree_.rank(c, i);
  }

  /// rank(c, i1) and rank(c, i2) in one wavelet descent, i1 <= i2; narrow
  /// intervals additionally share the RRR superblock scans.
  std::pair<std::size_t, std::size_t> rank2(std::uint8_t c, std::size_t i1,
                                            std::size_t i2) const noexcept {
    return tree_.rank_pair(c, i1, i2);
  }

  std::uint8_t access(std::size_t i) const noexcept { return tree_.access(i); }
  std::size_t size() const noexcept { return tree_.size(); }

  /// Per-instance bytes; add shared_table_bytes() once per process/device.
  std::size_t size_in_bytes() const noexcept { return tree_.size_in_bytes(); }
  /// Bytes on the heap — smaller than size_in_bytes() when the node
  /// payloads were adopted from a memory-mapped archive.
  std::size_t heap_size_in_bytes() const noexcept {
    return tree_.heap_size_in_bytes();
  }
  std::size_t shared_table_bytes() const {
    return GlobalRankTable::get(params_.block_bits).device_size_in_bytes();
  }

  RrrParams params() const noexcept { return params_; }
  const WaveletTree<RrrVector>& tree() const noexcept { return tree_; }

  void save(ByteWriter& writer) const {
    writer.u32(params_.block_bits);
    writer.u32(params_.superblock_factor);
    tree_.save(writer);
  }
  static RrrWaveletOcc load(ByteReader& reader) {
    RrrWaveletOcc occ;
    occ.params_.block_bits = reader.u32();
    occ.params_.superblock_factor = reader.u32();
    occ.tree_ = WaveletTree<RrrVector>::load(reader);
    return occ;
  }

  /// Flat 64-byte-aligned layout (archive format v3).
  void save_flat(ByteWriter& writer) const {
    writer.u32(params_.block_bits);
    writer.u32(params_.superblock_factor);
    tree_.save_flat(writer);
  }
  static RrrWaveletOcc load_flat(ByteReader& reader, bool adopt) {
    RrrWaveletOcc occ;
    occ.params_.block_bits = reader.u32();
    occ.params_.superblock_factor = reader.u32();
    occ.tree_ = WaveletTree<RrrVector>::load_flat(reader, adopt);
    return occ;
  }

 private:
  static constexpr unsigned kDnaAlphabetSizeLocal = 4;
  RrrParams params_{};
  WaveletTree<RrrVector> tree_;
};

class PlainWaveletOcc {
 public:
  PlainWaveletOcc() = default;
  explicit PlainWaveletOcc(std::span<const std::uint8_t> bwt)
      : tree_(bwt, 4, [](const BitVector& bits) {
          return PlainRankBitVector(BitVector(bits));
        }) {}

  std::size_t rank(std::uint8_t c, std::size_t i) const noexcept {
    return tree_.rank(c, i);
  }
  std::pair<std::size_t, std::size_t> rank2(std::uint8_t c, std::size_t i1,
                                            std::size_t i2) const noexcept {
    return tree_.rank_pair(c, i1, i2);
  }
  std::uint8_t access(std::size_t i) const noexcept { return tree_.access(i); }
  std::size_t size() const noexcept { return tree_.size(); }
  std::size_t size_in_bytes() const noexcept { return tree_.size_in_bytes(); }

  void save(ByteWriter& writer) const { tree_.save(writer); }
  static PlainWaveletOcc load(ByteReader& reader) {
    PlainWaveletOcc occ;
    occ.tree_ = WaveletTree<PlainRankBitVector>::load(reader);
    return occ;
  }

 private:
  WaveletTree<PlainRankBitVector> tree_;
};

/// Wavelet tree over header/body codewords — the Waidyasooriya et al.
/// related-work structure (ablation backend; ~32/body_bits space overhead
/// over the raw bits, single-fetch rank).
class HeaderBodyOcc {
 public:
  HeaderBodyOcc() = default;
  explicit HeaderBodyOcc(std::span<const std::uint8_t> bwt,
                         HeaderBodyParams params = {})
      : tree_(bwt, 4, [params](const BitVector& bits) {
          return HeaderBodyVector(bits, params);
        }) {}

  std::size_t rank(std::uint8_t c, std::size_t i) const noexcept {
    return tree_.rank(c, i);
  }
  std::pair<std::size_t, std::size_t> rank2(std::uint8_t c, std::size_t i1,
                                            std::size_t i2) const noexcept {
    return tree_.rank_pair(c, i1, i2);
  }
  std::uint8_t access(std::size_t i) const noexcept { return tree_.access(i); }
  std::size_t size() const noexcept { return tree_.size(); }
  std::size_t size_in_bytes() const noexcept { return tree_.size_in_bytes(); }

  void save(ByteWriter& writer) const { tree_.save(writer); }
  static HeaderBodyOcc load(ByteReader& reader) {
    HeaderBodyOcc occ;
    occ.tree_ = WaveletTree<HeaderBodyVector>::load(reader);
    return occ;
  }

 private:
  WaveletTree<HeaderBodyVector> tree_;
};

/// Huffman-shaped wavelet tree over RRR nodes — the SDSL-style shape used
/// by the BWT-WT related work (ablation backend; wins on skewed
/// compositions, ties the balanced tree on near-uniform DNA).
class HuffmanRrrOcc {
 public:
  HuffmanRrrOcc() = default;
  HuffmanRrrOcc(std::span<const std::uint8_t> bwt, RrrParams params)
      : params_(params), tree_(bwt, 4, [params](const BitVector& bits) {
          return RrrVector(bits, params);
        }) {}

  std::size_t rank(std::uint8_t c, std::size_t i) const noexcept {
    return tree_.rank(c, i);
  }
  std::uint8_t access(std::size_t i) const noexcept { return tree_.access(i); }
  std::size_t size() const noexcept { return tree_.size(); }
  std::size_t size_in_bytes() const noexcept { return tree_.size_in_bytes(); }
  double average_code_length() const noexcept { return tree_.average_code_length(); }
  RrrParams params() const noexcept { return params_; }

 private:
  RrrParams params_{};
  HuffmanWaveletTree<RrrVector> tree_;
};

class SampledOcc {
 public:
  SampledOcc() = default;

  /// `checkpoint_words` 64-bit words (32 bases each) per checkpoint block.
  explicit SampledOcc(std::span<const std::uint8_t> bwt, unsigned checkpoint_words = 4);

  std::size_t rank(std::uint8_t c, std::size_t i) const noexcept;

  /// Pulls the checkpoint row and the first packed word a rank at offset
  /// `i` will scan toward L1 (the sweep scheduler's lookahead hook). The
  /// two arrays are separate fetch streams, so both get a prefetch.
  void prefetch(std::size_t i) const noexcept {
    const std::size_t word = i >> 5;
    __builtin_prefetch(&checkpoints_[word / checkpoint_words_], /*rw=*/0,
                       /*locality=*/1);
    if (word < packed_.size()) {
      __builtin_prefetch(&packed_[word], /*rw=*/0, /*locality=*/1);
    }
  }

  std::uint8_t access(std::size_t i) const noexcept {
    return static_cast<std::uint8_t>((packed_[i >> 5] >> ((i & 31) * 2)) & 3);
  }
  std::size_t size() const noexcept { return n_; }
  std::size_t size_in_bytes() const noexcept {
    return packed_.size() * sizeof(std::uint64_t) +
           checkpoints_.size() * sizeof(checkpoints_[0]);
  }

  void save(ByteWriter& writer) const;
  static SampledOcc load(ByteReader& reader);

 private:
  std::vector<std::uint64_t> packed_;  // 2-bit codes, 32 per word
  std::vector<std::array<std::uint32_t, 4>> checkpoints_;
  unsigned checkpoint_words_ = 4;
  std::size_t n_ = 0;
};

}  // namespace bwaver
