#include "fmindex/bwt.hpp"

#include <array>
#include <stdexcept>

#include "fmindex/suffix_array.hpp"

namespace bwaver {

Bwt build_bwt(std::span<const std::uint8_t> text, std::span<const std::uint32_t> sa) {
  const std::size_t n = text.size();
  if (sa.size() != n + 1) {
    throw std::invalid_argument("build_bwt: suffix array size must be text size + 1");
  }
  Bwt bwt;
  bwt.text_length = static_cast<std::uint32_t>(n);
  bwt.symbols.reserve(n);
  for (std::size_t row = 0; row <= n; ++row) {
    const std::uint32_t suffix = sa[row];
    if (suffix == 0) {
      bwt.primary = static_cast<std::uint32_t>(row);  // char before suffix 0 is '$'
    } else {
      bwt.symbols.push_back(text[suffix - 1]);
    }
  }
  return bwt;
}

Bwt build_bwt(std::span<const std::uint8_t> text) {
  const auto sa = build_suffix_array(text);
  return build_bwt(text, sa);
}

std::array<std::uint32_t, 4> c_table_of(const Bwt& bwt) {
  std::array<std::uint32_t, 4> counts{};
  for (const std::uint8_t c : bwt.symbols) ++counts[c];
  std::array<std::uint32_t, 4> c_table{};
  std::uint32_t sum = 1;  // the sentinel precedes every base
  for (unsigned c = 0; c < 4; ++c) {
    c_table[c] = sum;
    sum += counts[c];
  }
  return c_table;
}

std::vector<std::uint8_t> inverse_bwt(const Bwt& bwt) {
  const std::size_t n = bwt.text_length;
  const std::size_t rows = n + 1;

  // Counting-sort pass to compute LF: lf[row] = C[column(row)] + occurrences
  // of column(row) before row. The sentinel sorts before every base.
  std::array<std::size_t, 5> counts{};  // index: 0=$ then codes 0..3 shifted by 1
  for (std::size_t row = 0; row < rows; ++row) {
    const std::uint8_t c = bwt.column(row);
    ++counts[c == 4 ? 0 : c + 1];
  }
  std::array<std::size_t, 5> start{};
  std::size_t sum = 0;
  for (std::size_t c = 0; c < 5; ++c) {
    start[c] = sum;
    sum += counts[c];
  }
  std::vector<std::uint32_t> lf(rows);
  std::array<std::size_t, 5> seen{};
  for (std::size_t row = 0; row < rows; ++row) {
    const std::uint8_t c = bwt.column(row);
    const std::size_t bucket = (c == 4) ? 0 : c + 1;
    lf[row] = static_cast<std::uint32_t>(start[bucket] + seen[bucket]++);
  }

  // Row 0 is "$T"; its last column is T[n-1]. Walking LF yields T backwards.
  std::vector<std::uint8_t> text(n);
  std::size_t row = 0;
  for (std::size_t k = n; k-- > 0;) {
    text[k] = bwt.column(row);
    row = lf[row];
  }
  return text;
}

}  // namespace bwaver
