// Sampled suffix array.
//
// The paper keeps the full SA on the host (4 bytes/base). Production
// FM-index mappers instead sample it — store SA[row] only where
// SA[row] % rate == 0 — and recover any entry by walking the LF mapping
// until a sampled row is reached: SA[row] = SA[LF^k(row)] + k. This trades
// locate time (<= rate-1 LF steps) for an SA footprint of ~4/rate
// bytes/base, and is the standard memory-conscious companion to the
// succinct Occ structure (it is what "allow reference sequences longer than
// 100 millions bp", the paper's future work, requires on the host side).
//
// Layout: a bit per row marking sampled rows, a two-level rank directory
// over it, and the sampled values packed at ceil(log2(n+1)) bits each.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "succinct/bitvector.hpp"
#include "succinct/int_vector.hpp"
#include "succinct/rank_support.hpp"
#include "util/bits.hpp"

namespace bwaver {

class SampledSuffixArray {
 public:
  SampledSuffixArray() = default;

  /// Samples the (n+1)-entry suffix array at `rate` (1 = keep everything).
  SampledSuffixArray(std::span<const std::uint32_t> sa, unsigned rate)
      : rate_(rate), rows_(sa.size()) {
    if (rate == 0) throw std::invalid_argument("SampledSuffixArray: rate must be >= 1");
    std::size_t samples = 0;
    // Heap-allocated so the rank directory's internal pointer stays valid
    // when the SampledSuffixArray itself is moved.
    marks_ = std::make_unique<BitVector>(sa.size(), false);
    for (std::size_t row = 0; row < sa.size(); ++row) {
      if (sa[row] % rate == 0) {
        marks_->set(row, true);
        ++samples;
      }
    }
    rank_ = RankSupport(*marks_);
    values_ = IntVector(samples, std::max(1u, ceil_log2(sa.size() + 1)));
    std::size_t cursor = 0;
    for (std::size_t row = 0; row < sa.size(); ++row) {
      if (marks_->get(row)) values_.set(cursor++, sa[row]);
    }
  }

  unsigned rate() const noexcept { return rate_; }
  std::size_t rows() const noexcept { return rows_; }

  bool is_sampled(std::uint32_t row) const noexcept { return marks_->get(row); }

  /// Recovers SA[row] through the index's LF mapping. The walk terminates
  /// within `rate` steps because every residue class 0 (mod rate) of text
  /// positions is sampled, and each LF step decrements the text position.
  template <typename Index>
  std::uint32_t lookup(const Index& index, std::uint32_t row) const {
    std::uint32_t steps = 0;
    while (!marks_->get(row)) {
      row = index.lf(row);
      ++steps;
    }
    const std::size_t slot = rank_.rank1(row);
    return static_cast<std::uint32_t>(values_.get(slot)) + steps;
  }

  std::size_t size_in_bytes() const noexcept {
    return (marks_ ? marks_->size_in_bytes() : 0) + rank_.size_in_bytes() +
           values_.size_in_bytes();
  }

  /// Binary (de)serialization; the rank directory is rebuilt on load.
  void save(ByteWriter& writer) const {
    writer.u32(rate_);
    writer.u64(rows_);
    if (marks_) {
      marks_->save(writer);
    } else {
      BitVector{}.save(writer);
    }
    values_.save(writer);
  }
  static SampledSuffixArray load(ByteReader& reader) {
    SampledSuffixArray ssa;
    ssa.rate_ = reader.u32();
    if (ssa.rate_ == 0) throw IoError("SampledSuffixArray::load: corrupt rate");
    ssa.rows_ = reader.u64();
    ssa.marks_ = std::make_unique<BitVector>(BitVector::load(reader));
    ssa.rank_ = RankSupport(*ssa.marks_);
    ssa.values_ = IntVector::load(reader);
    return ssa;
  }

 private:
  unsigned rate_ = 1;
  std::size_t rows_ = 0;
  std::unique_ptr<BitVector> marks_;
  RankSupport rank_;
  IntVector values_;
};

/// Sampled *inverse* suffix array: ISA[k*rate] for every k, plus the
/// sentinel entry. Together with the LF mapping this turns the FM-index
/// into a self-index: any text substring can be extracted without storing
/// the text ("display" in FM-index terms), at <= rate extra LF steps per
/// extraction.
class SampledInverseSuffixArray {
 public:
  SampledInverseSuffixArray() = default;

  SampledInverseSuffixArray(std::span<const std::uint32_t> sa, unsigned rate)
      : rate_(rate), text_length_(sa.size() - 1) {
    if (rate == 0) {
      throw std::invalid_argument("SampledInverseSuffixArray: rate must be >= 1");
    }
    const std::size_t samples = text_length_ / rate + 1;
    rows_ = IntVector(samples, std::max(1u, ceil_log2(sa.size() + 1)));
    for (std::size_t row = 0; row < sa.size(); ++row) {
      if (sa[row] % rate == 0 && sa[row] / rate < samples) {
        rows_.set(sa[row] / rate, row);
      }
    }
  }

  unsigned rate() const noexcept { return rate_; }

  /// Row of the suffix starting at text position k*rate.
  std::uint32_t row_at_sample(std::size_t k) const noexcept {
    return static_cast<std::uint32_t>(rows_.get(k));
  }

  /// Extracts text[start, start+length) by walking LF backwards from the
  /// nearest sampled anchor at or after the window's end.
  template <typename Index>
  std::vector<std::uint8_t> extract(const Index& index, std::uint32_t start,
                                    std::uint32_t length) const {
    if (start + length > text_length_) {
      throw std::out_of_range("SampledInverseSuffixArray::extract: past text end");
    }
    std::vector<std::uint8_t> out(length);
    if (length == 0) return out;

    const std::uint32_t end = start + length;
    // Anchor: smallest sampled position >= end (the sentinel row anchors
    // position text_length itself: ISA[n] is row 0).
    const std::uint32_t anchor_index = (end + rate_ - 1) / rate_;
    std::uint32_t anchor_pos;
    std::uint32_t row;
    if (static_cast<std::size_t>(anchor_index) * rate_ >= text_length_) {
      anchor_pos = static_cast<std::uint32_t>(text_length_);
      row = 0;  // ISA[n]: the sentinel suffix is always the first row
    } else {
      anchor_pos = anchor_index * rate_;
      row = row_at_sample(anchor_index);
    }
    // Each LF step reveals the character before the current suffix.
    for (std::uint32_t pos = anchor_pos; pos > start; --pos) {
      const std::uint8_t c = index.bwt_at(row);
      if (pos <= end) out[pos - 1 - start] = c;
      row = index.lf(row);
    }
    return out;
  }

  std::size_t size_in_bytes() const noexcept { return rows_.size_in_bytes(); }

  void save(ByteWriter& writer) const {
    writer.u32(rate_);
    writer.u64(text_length_);
    rows_.save(writer);
  }
  static SampledInverseSuffixArray load(ByteReader& reader) {
    SampledInverseSuffixArray isa;
    isa.rate_ = reader.u32();
    if (isa.rate_ == 0) throw IoError("SampledInverseSuffixArray::load: corrupt rate");
    isa.text_length_ = reader.u64();
    isa.rows_ = IntVector::load(reader);
    return isa;
  }

 private:
  unsigned rate_ = 1;
  std::size_t text_length_ = 0;
  IntVector rows_;
};

}  // namespace bwaver
