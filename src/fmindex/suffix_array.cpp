#include "fmindex/suffix_array.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace bwaver {

namespace detail {

namespace {
constexpr std::uint32_t kEmpty = std::numeric_limits<std::uint32_t>::max();
}  // namespace

void sais(const std::vector<std::uint32_t>& s, std::vector<std::uint32_t>& sa,
          std::uint32_t alphabet) {
  const std::size_t n = s.size();
  sa.assign(n, kEmpty);
  if (n == 0) return;
  if (n == 1) {
    sa[0] = 0;
    return;
  }

  // Suffix types: 1 = S-type (smaller than successor), 0 = L-type.
  std::vector<std::uint8_t> type(n);
  type[n - 1] = 1;  // the sentinel suffix is S-type by definition
  for (std::size_t i = n - 1; i-- > 0;) {
    type[i] = (s[i] < s[i + 1] || (s[i] == s[i + 1] && type[i + 1])) ? 1 : 0;
  }
  auto is_lms = [&](std::size_t i) { return i > 0 && type[i] && !type[i - 1]; };

  std::vector<std::uint32_t> count(alphabet, 0);
  for (std::uint32_t c : s) ++count[c];
  std::vector<std::uint32_t> head(alphabet), tail(alphabet);
  auto reset_heads = [&] {
    std::uint32_t sum = 0;
    for (std::uint32_t c = 0; c < alphabet; ++c) {
      head[c] = sum;
      sum += count[c];
    }
  };
  auto reset_tails = [&] {
    std::uint32_t sum = 0;
    for (std::uint32_t c = 0; c < alphabet; ++c) {
      sum += count[c];
      tail[c] = sum;
    }
  };

  // Induced sorting: L-type suffixes left-to-right from bucket heads, then
  // S-type right-to-left from bucket tails.
  auto induce = [&] {
    reset_heads();
    for (std::size_t i = 0; i < n; ++i) {
      if (sa[i] == kEmpty || sa[i] == 0) continue;
      const std::size_t j = sa[i] - 1;
      if (!type[j]) sa[head[s[j]]++] = static_cast<std::uint32_t>(j);
    }
    reset_tails();
    for (std::size_t i = n; i-- > 0;) {
      if (sa[i] == kEmpty || sa[i] == 0) continue;
      const std::size_t j = sa[i] - 1;
      if (type[j]) sa[--tail[s[j]]] = static_cast<std::uint32_t>(j);
    }
  };

  // Stage 1: drop LMS suffixes at their bucket tails (any order) and induce
  // to obtain the relative order of all LMS *substrings*.
  reset_tails();
  for (std::size_t i = 1; i < n; ++i) {
    if (is_lms(i)) sa[--tail[s[i]]] = static_cast<std::uint32_t>(i);
  }
  induce();

  // Stage 2: name LMS substrings in their sorted order.
  std::vector<std::uint32_t> lms_sorted;
  lms_sorted.reserve(n / 2 + 1);
  for (std::size_t i = 0; i < n; ++i) {
    if (sa[i] != kEmpty && is_lms(sa[i])) lms_sorted.push_back(sa[i]);
  }
  const std::size_t num_lms = lms_sorted.size();

  std::vector<std::uint32_t> name(n, kEmpty);
  std::uint32_t last_name = 0;
  std::uint32_t prev = kEmpty;
  for (std::uint32_t pos : lms_sorted) {
    if (prev != kEmpty) {
      // Compare the LMS substrings starting at prev and pos. The unique
      // sentinel guarantees comparisons never run past the end.
      bool same = true;
      for (std::size_t d = 0;; ++d) {
        const bool lms_p = is_lms(prev + d);
        const bool lms_q = is_lms(pos + d);
        if (d > 0 && (lms_p || lms_q)) {
          same = lms_p && lms_q;
          break;
        }
        if (s[prev + d] != s[pos + d] || type[prev + d] != type[pos + d]) {
          same = false;
          break;
        }
      }
      if (!same) ++last_name;
    }
    name[pos] = last_name;
    prev = pos;
  }
  const std::uint32_t distinct = num_lms == 0 ? 0 : last_name + 1;

  // Stage 3: order the LMS *suffixes*. If all names are distinct the
  // substring order is already the suffix order; otherwise recurse on the
  // reduced string of names (in text order).
  std::vector<std::uint32_t> lms_pos;
  lms_pos.reserve(num_lms);
  for (std::size_t i = 1; i < n; ++i) {
    if (is_lms(i)) lms_pos.push_back(static_cast<std::uint32_t>(i));
  }

  if (distinct < num_lms) {
    std::vector<std::uint32_t> reduced;
    reduced.reserve(num_lms);
    for (std::uint32_t pos : lms_pos) reduced.push_back(name[pos]);
    std::vector<std::uint32_t> reduced_sa;
    sais(reduced, reduced_sa, distinct);
    for (std::size_t k = 0; k < num_lms; ++k) {
      lms_sorted[k] = lms_pos[reduced_sa[k]];
    }
  } else {
    for (std::uint32_t pos : lms_pos) lms_sorted[name[pos]] = pos;
  }

  // Stage 4: place the sorted LMS suffixes at bucket tails (reverse order so
  // ties fill tail-first) and induce the final array.
  std::fill(sa.begin(), sa.end(), kEmpty);
  reset_tails();
  for (std::size_t k = num_lms; k-- > 0;) {
    const std::uint32_t pos = lms_sorted[k];
    sa[--tail[s[pos]]] = pos;
  }
  induce();
}

}  // namespace detail

std::vector<std::uint32_t> build_suffix_array(std::span<const std::uint8_t> text,
                                              unsigned alphabet_size) {
  if (text.size() >= std::numeric_limits<std::uint32_t>::max() - 1) {
    throw std::length_error("build_suffix_array: text too long for 32-bit indices");
  }
  std::vector<std::uint32_t> s;
  s.reserve(text.size() + 1);
  for (std::uint8_t c : text) {
    if (c >= alphabet_size) {
      throw std::invalid_argument("build_suffix_array: symbol out of range");
    }
    s.push_back(static_cast<std::uint32_t>(c) + 1);  // shift to make room for '$' = 0
  }
  s.push_back(0);

  std::vector<std::uint32_t> sa;
  detail::sais(s, sa, alphabet_size + 1);
  return sa;
}

std::vector<std::uint32_t> build_suffix_array_naive(std::span<const std::uint8_t> text) {
  const std::size_t n = text.size();
  std::vector<std::uint32_t> shifted(n + 1);
  for (std::size_t i = 0; i < n; ++i) shifted[i] = static_cast<std::uint32_t>(text[i]) + 1;
  shifted[n] = 0;

  std::vector<std::uint32_t> sa(n + 1);
  for (std::size_t i = 0; i <= n; ++i) sa[i] = static_cast<std::uint32_t>(i);
  std::sort(sa.begin(), sa.end(), [&](std::uint32_t a, std::uint32_t b) {
    return std::lexicographical_compare(shifted.begin() + a, shifted.end(),
                                        shifted.begin() + b, shifted.end());
  });
  return sa;
}

}  // namespace bwaver
