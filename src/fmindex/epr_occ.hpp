// EprOcc — EPR-dictionary occ backend: bit-transposed 2-bit symbols
// interleaved with checkpoint prefix counts, one cache line per 128 bases
// (Pockrandt et al., *EPR-dictionaries*, the constant-time rank structure
// behind GenMap/SeqAn3 bidirectional indexes).
//
// Layout: each 64-byte block carries the four cumulative symbol counts up
// to the block start (16 bytes) followed by four bit-plane words (32 bytes):
// planes[0..1] hold the low code bit of bases 0..63 / 64..127, planes[2..3]
// the high bit. rank(c, i) is therefore one cache-line fetch, one XOR+AND
// match mask and one popcount pass — flat in both the offset and the symbol,
// with no per-level tree walk (RRR/plain wavelet) and no per-word scan loop
// (SampledOcc, VectorOcc). The price is space: 64 bytes per 128 bases =
// 0.5 B/base against VectorOcc's 0.34 — the classic space-for-constant-time
// trade the registry records per engine.
//
// A terminal block holds the final totals, so rank at i == n stays one
// fetch. Storage is a FlatArray so archive loads (format v4's optional
// "epr" section) can adopt the blocks zero-copy from a mapped file.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <utility>

#include "io/byte_io.hpp"
#include "kernels/rank_kernel.hpp"
#include "util/flat_array.hpp"

namespace bwaver {

class EprOcc {
 public:
  static constexpr unsigned kBasesPerBlock = 128;

  /// Checkpoint counts and bit-transposed text interleaved in one cache line.
  struct alignas(64) Block {
    std::array<std::uint32_t, 4> cum{};    ///< rank(c, block start)
    std::array<std::uint64_t, 4> planes{}; ///< [lo0, lo1, hi0, hi1]
  };
  static_assert(sizeof(Block) == 64, "one rank = one cache line");

  EprOcc() = default;

  /// Transposes the squeezed BWT; `kernel` pins a specific counting kernel
  /// (tests sweep every available one), nullptr selects the dispatch
  /// choice kernels::active_kernel().
  explicit EprOcc(std::span<const std::uint8_t> bwt,
                  const kernels::RankKernel* kernel = nullptr);

  std::size_t rank(std::uint8_t c, std::size_t i) const noexcept {
    const Block& block = blocks_[i / kBasesPerBlock];
    return block.cum[c] +
           kernel_->count_epr_prefix(block.planes.data(),
                                     static_cast<unsigned>(i % kBasesPerBlock), c);
  }

  /// rank(c, i1) and rank(c, i2) with i1 <= i2; when both offsets land in
  /// the same block the second answer reuses the hot line.
  std::pair<std::size_t, std::size_t> rank2(std::uint8_t c, std::size_t i1,
                                            std::size_t i2) const noexcept {
    const std::size_t r1 = rank(c, i1);
    if (i1 == i2) return {r1, r1};
    const std::size_t b1 = i1 / kBasesPerBlock;
    if (b1 != i2 / kBasesPerBlock) return {r1, rank(c, i2)};
    return {r1, blocks_[b1].cum[c] +
                    kernel_->count_epr_prefix(
                        blocks_[b1].planes.data(),
                        static_cast<unsigned>(i2 % kBasesPerBlock), c)};
  }
  std::pair<std::size_t, std::size_t> rank_pair(std::uint8_t c, std::size_t i1,
                                                std::size_t i2) const noexcept {
    return rank2(c, i1, i2);
  }

  /// rank of every symbol at once — the bidirectional-extension primitive
  /// (extendLeft needs all four occ counts per bound). Three masked
  /// popcounts per 64-base plane pair off the same cache line, against four
  /// independent rank() calls.
  std::array<std::uint32_t, 4> rank_all(std::size_t i) const noexcept {
    const Block& block = blocks_[i / kBasesPerBlock];
    const unsigned off = static_cast<unsigned>(i % kBasesPerBlock);
    std::array<std::uint32_t, 4> counts = block.cum;
    const unsigned b0 = off < 64 ? off : 64;
    accumulate_word(block.planes[0], block.planes[2], b0, counts);
    accumulate_word(block.planes[1], block.planes[3], off - b0, counts);
    return counts;
  }

  std::uint8_t access(std::size_t i) const noexcept {
    const Block& block = blocks_[i / kBasesPerBlock];
    const unsigned off = static_cast<unsigned>(i % kBasesPerBlock);
    const unsigned w = off >> 6;
    const unsigned b = off & 63;
    return static_cast<std::uint8_t>(((block.planes[w] >> b) & 1) |
                                     (((block.planes[2 + w] >> b) & 1) << 1));
  }

  /// Pulls the cache line holding offset `i`'s block toward L1 ahead of a
  /// rank/rank2 at that offset (the sweep scheduler's lookahead hook).
  void prefetch(std::size_t i) const noexcept {
    __builtin_prefetch(&blocks_[i / kBasesPerBlock], /*rw=*/0, /*locality=*/1);
  }

  std::size_t size() const noexcept { return n_; }
  std::size_t size_in_bytes() const noexcept { return blocks_.bytes(); }
  /// Bytes on the heap — zero beyond bookkeeping when the blocks were
  /// adopted from a memory-mapped archive.
  std::size_t heap_size_in_bytes() const noexcept { return blocks_.heap_bytes(); }

  /// The counting kernel this instance dispatches to.
  const kernels::RankKernel& kernel() const noexcept { return *kernel_; }

  void save(ByteWriter& writer) const;
  /// The kernel choice is not serialized — a loaded instance re-dispatches
  /// on the loading machine's CPU.
  static EprOcc load(ByteReader& reader);

  /// Flat 64-byte-aligned layout (archive format v4's "epr" section);
  /// adopt=true borrows the block array from the reader's (mapped) backing.
  void save_flat(ByteWriter& writer) const;
  static EprOcc load_flat(ByteReader& reader, bool adopt);

  /// A zero-copy alias of `other`'s blocks (the archive-load fast path:
  /// serving re-uses a loaded structure instead of re-transposing the BWT).
  /// `other` must outlive the view.
  static EprOcc view_of(const EprOcc& other);

 private:
  static void accumulate_word(std::uint64_t lo, std::uint64_t hi, unsigned bases,
                              std::array<std::uint32_t, 4>& counts) noexcept {
    if (bases == 0) return;
    const std::uint64_t valid =
        bases >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bases) - 1;
    const auto n1 =
        static_cast<std::uint32_t>(__builtin_popcountll(lo & ~hi & valid));
    const auto n2 =
        static_cast<std::uint32_t>(__builtin_popcountll(~lo & hi & valid));
    const auto n3 =
        static_cast<std::uint32_t>(__builtin_popcountll(lo & hi & valid));
    counts[0] += bases - n1 - n2 - n3;
    counts[1] += n1;
    counts[2] += n2;
    counts[3] += n3;
  }

  static std::size_t block_count_for(std::size_t n) noexcept {
    return (n + kBasesPerBlock - 1) / kBasesPerBlock + 1;  // data + terminal
  }

  FlatArray<Block> blocks_;
  std::size_t n_ = 0;
  const kernels::RankKernel* kernel_ = nullptr;
};

}  // namespace bwaver
