// Approximate (k-mismatch) backward search — the paper's stated future work
// ("extend our mapping design to approximate string matching") and the
// algorithm behind the staged designs it cites (FHAST [6], Arram et al.
// [7]: exact module first, then 1- and 2-mismatch modules for the reads
// left unaligned).
//
// The classic FM-index substitution search: walk the pattern backwards and,
// at each position, branch on the three non-matching bases while any
// mismatch budget remains. Every emitted interval corresponds to a distinct
// modified pattern string, so intervals are pairwise disjoint and can be
// summed/located without deduplication. Cost grows as O((3p)^k), which is
// why hardware designs stop at k = 2 (paper, Sec. II).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "fmindex/fm_index.hpp"

namespace bwaver {

/// How the approximate stages enumerate mismatching strings:
/// kBranch — the classic 4-way backward recursion above (restarts the full
/// pattern per stratum); kScheme — precomputed bidirectional search schemes
/// (bidir_index.hpp), same hit sets, far fewer executed steps.
enum class ApproxMode : std::uint8_t { kBranch, kScheme };

inline const char* approx_mode_name(ApproxMode mode) noexcept {
  return mode == ApproxMode::kScheme ? "scheme" : "branch";
}

inline ApproxMode parse_approx_mode(std::string_view name) {
  if (name == "branch") return ApproxMode::kBranch;
  if (name == "scheme") return ApproxMode::kScheme;
  throw std::invalid_argument("approx mode must be 'branch' or 'scheme'");
}

/// Ceiling on hits gathered per search before truncation. Repetitive
/// references can make a low-complexity read match at millions of rows;
/// the cap bounds memory while ApproxStats::truncated flags the loss.
inline constexpr std::size_t kDefaultApproxHitCap = 100000;

struct ApproxHit {
  SaInterval interval;
  std::uint8_t mismatches = 0;
};

struct ApproxStats {
  std::uint64_t steps_executed = 0;   ///< backward-search steps (tree edges)
  std::uint64_t branches_pruned = 0;  ///< empty intervals abandoned
  std::uint64_t hits = 0;
  bool truncated = false;  ///< a search dropped hits past its cap
};

namespace detail {

template <typename Occ>
void approx_recurse(const FmIndex<Occ>& index, std::span<const std::uint8_t> pattern,
                    std::size_t next,  // characters of pattern still to match
                    SaInterval iv, unsigned budget, std::uint8_t used,
                    std::vector<ApproxHit>& hits, ApproxStats* stats,
                    std::size_t hit_cap) {
  if (next == 0) {
    if (!iv.empty()) {
      if (hits.size() >= hit_cap) {
        if (stats) stats->truncated = true;
        return;
      }
      hits.push_back(ApproxHit{iv, used});
      if (stats) ++stats->hits;
    }
    return;
  }
  const std::uint8_t expected = pattern[next - 1];
  for (std::uint8_t c = 0; c < 4; ++c) {
    const bool is_mismatch = c != expected;
    if (is_mismatch && budget == 0) continue;
    const SaInterval stepped = index.step(iv, c);
    if (stats) ++stats->steps_executed;
    if (stepped.empty()) {
      if (stats) ++stats->branches_pruned;
      continue;
    }
    approx_recurse(index, pattern, next - 1, stepped,
                   is_mismatch ? budget - 1 : budget,
                   static_cast<std::uint8_t>(used + (is_mismatch ? 1 : 0)), hits,
                   stats, hit_cap);
  }
}

}  // namespace detail

/// All SA intervals of strings within Hamming distance `max_mismatches` of
/// `pattern` that occur in the indexed text. Intervals are disjoint;
/// `mismatches` records the distance actually used.
template <typename Occ>
std::vector<ApproxHit> approx_count(const FmIndex<Occ>& index,
                                    std::span<const std::uint8_t> pattern,
                                    unsigned max_mismatches,
                                    ApproxStats* stats = nullptr,
                                    std::size_t hit_cap = kDefaultApproxHitCap) {
  std::vector<ApproxHit> hits;
  if (pattern.empty()) return hits;
  detail::approx_recurse(index, pattern, pattern.size(), index.full_interval(),
                         max_mismatches, 0, hits, stats, hit_cap);
  return hits;
}

/// Positions (suffix-array resolved) of all approximate occurrences,
/// tagged with their mismatch count. Order is unspecified.
template <typename Occ>
std::vector<std::pair<std::uint32_t, std::uint8_t>> approx_locate(
    const FmIndex<Occ>& index, std::span<const std::uint8_t> pattern,
    unsigned max_mismatches) {
  std::vector<std::pair<std::uint32_t, std::uint8_t>> positions;
  for (const ApproxHit& hit : approx_count(index, pattern, max_mismatches)) {
    for (std::uint32_t row = hit.interval.lo; row < hit.interval.hi; ++row) {
      positions.emplace_back(index.suffix_array()[row], hit.mismatches);
    }
  }
  return positions;
}

/// Best-stratum search: returns only the hits at the smallest achievable
/// mismatch count (0 if exact hits exist, else 1, ...), mirroring how the
/// staged hardware reports a read as soon as any module aligns it.
template <typename Occ>
std::vector<ApproxHit> approx_count_best(const FmIndex<Occ>& index,
                                         std::span<const std::uint8_t> pattern,
                                         unsigned max_mismatches,
                                         ApproxStats* stats = nullptr,
                                         std::size_t hit_cap = kDefaultApproxHitCap) {
  for (unsigned k = 0; k <= max_mismatches; ++k) {
    std::vector<ApproxHit> hits = approx_count(index, pattern, k, stats, hit_cap);
    std::erase_if(hits, [k](const ApproxHit& hit) { return hit.mismatches != k; });
    if (!hits.empty()) return hits;
  }
  return {};
}

}  // namespace bwaver
