#include "fmindex/index_stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "fmindex/bwt.hpp"
#include "succinct/global_rank_table.hpp"
#include "util/bits.hpp"

namespace bwaver {

SequenceStats compute_sequence_stats(std::span<const std::uint8_t> codes) {
  SequenceStats stats;
  stats.length = codes.size();
  if (codes.empty()) return stats;

  std::uint64_t runs = 1;
  stats.base_counts[codes[0] & 3] = 0;  // ensure zero-init semantics are obvious
  for (std::size_t i = 0; i < codes.size(); ++i) {
    ++stats.base_counts[codes[i] & 3];
    if (i > 0 && codes[i] != codes[i - 1]) ++runs;
  }
  stats.runs = runs;
  stats.mean_run_length =
      static_cast<double>(codes.size()) / static_cast<double>(runs);
  stats.gc_content =
      static_cast<double>(stats.base_counts[1] + stats.base_counts[2]) /
      static_cast<double>(codes.size());

  double entropy = 0.0;
  for (std::uint64_t count : stats.base_counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / static_cast<double>(codes.size());
    entropy -= p * std::log2(p);
  }
  stats.entropy_bits_per_symbol = entropy;
  return stats;
}

namespace {

/// Accumulates the per-field sizes by rebuilding the node bit-vectors'
/// accounting from the occ backend's structure description. The wavelet
/// tree doesn't expose per-node internals, so we recompute the breakdown
/// from the BWT with the same parameters — identical arithmetic, observable
/// fields.
RrrSizeBreakdown compute_breakdown(const FmIndex<RrrWaveletOcc>& index) {
  const RrrWaveletOcc& occ = index.occ_backend();
  const RrrParams params = occ.params();
  const unsigned b = params.block_bits;
  const unsigned sf = params.superblock_factor;

  RrrSizeBreakdown breakdown;
  breakdown.shared_table_bytes = GlobalRankTable::get(b).device_size_in_bytes();

  // Rebuild each wavelet level's bit-vector lengths and offset widths.
  // Level sizes: root = n; children = counts of each half.
  const auto& bwt = index.bwt().symbols;
  const std::size_t n = bwt.size();
  std::array<std::uint64_t, 4> counts{};
  for (std::uint8_t c : bwt) ++counts[c];

  const std::uint64_t node_sizes[3] = {n, counts[0] + counts[1], counts[2] + counts[3]};
  for (std::uint64_t node_bits : node_sizes) {
    const std::uint64_t blocks = div_ceil(node_bits, b);
    const std::uint64_t supers = div_ceil(blocks, sf);
    breakdown.classes_bytes += div_ceil(blocks * 4, 8);
    breakdown.partial_sum_bytes += supers * 4;
    breakdown.offset_sum_bytes += supers * 4;
  }
  // The offsets term depends on content; take it from the real structure:
  // occ.size_in_bytes() counts classes+sums+offsets+node overhead, so the
  // offsets bytes are the remainder.
  const std::uint64_t accounted = breakdown.classes_bytes +
                                  breakdown.partial_sum_bytes +
                                  breakdown.offset_sum_bytes;
  const std::uint64_t actual = occ.size_in_bytes();
  breakdown.offsets_bytes = actual > accounted ? actual - accounted : 0;
  // Word-padding and node structs land in the offsets remainder; split out
  // a nominal per-node overhead for reporting.
  breakdown.node_overhead_bytes = 0;
  return breakdown;
}

}  // namespace

IndexStats compute_index_stats(const FmIndex<RrrWaveletOcc>& index,
                               const DeviceSpec& device) {
  IndexStats stats;
  stats.bwt = compute_sequence_stats(index.bwt().symbols);
  const auto text = inverse_bwt(index.bwt());
  stats.text = compute_sequence_stats(text);
  stats.structure = compute_breakdown(index);
  stats.suffix_array_bytes = index.suffix_array().size() * sizeof(std::uint32_t);

  const double total = static_cast<double>(stats.structure.total_bytes());
  stats.bytes_per_base = total / static_cast<double>(std::max<std::uint64_t>(1, index.size()));
  stats.saved_vs_raw = 1.0 - stats.bytes_per_base;
  stats.device_capacity_bytes = device.total_on_chip_bytes();
  stats.fits_on_device = stats.structure.total_bytes() <= stats.device_capacity_bytes;
  return stats;
}

std::string format_index_stats(const IndexStats& stats) {
  char buffer[2048];
  std::snprintf(
      buffer, sizeof(buffer),
      "reference:        %llu bp, GC %.1f%%, H0 %.3f bits/base\n"
      "BWT runs:         %llu (mean run %.2f; raw text: %llu / %.2f)\n"
      "structure bytes:  %llu total (%.4f B/base, %.1f%% saved vs raw BWT)\n"
      "  classes:        %llu\n"
      "  partial sums:   %llu\n"
      "  offset sums:    %llu\n"
      "  offsets:        %llu\n"
      "  shared tables:  %llu\n"
      "suffix array:     %llu bytes (host-resident)\n"
      "device fit:       %s (%llu / %llu bytes)\n",
      static_cast<unsigned long long>(stats.text.length), stats.text.gc_content * 100,
      stats.text.entropy_bits_per_symbol,
      static_cast<unsigned long long>(stats.bwt.runs), stats.bwt.mean_run_length,
      static_cast<unsigned long long>(stats.text.runs), stats.text.mean_run_length,
      static_cast<unsigned long long>(stats.structure.total_bytes()),
      stats.bytes_per_base, stats.saved_vs_raw * 100,
      static_cast<unsigned long long>(stats.structure.classes_bytes),
      static_cast<unsigned long long>(stats.structure.partial_sum_bytes),
      static_cast<unsigned long long>(stats.structure.offset_sum_bytes),
      static_cast<unsigned long long>(stats.structure.offsets_bytes),
      static_cast<unsigned long long>(stats.structure.shared_table_bytes),
      static_cast<unsigned long long>(stats.suffix_array_bytes),
      stats.fits_on_device ? "YES" : "NO — exceeds on-chip memory",
      static_cast<unsigned long long>(stats.structure.total_bytes()),
      static_cast<unsigned long long>(stats.device_capacity_bytes));
  return buffer;
}

}  // namespace bwaver
