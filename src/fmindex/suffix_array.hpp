// Suffix array construction.
//
// The paper's pipeline step 1 ("BWT and SA computation") needs the full
// suffix array of reference-plus-sentinel: the FPGA returns SA intervals and
// the host resolves them to positions through SA. We build it with SA-IS
// (Nong, Zhang & Chan) — linear time, linear extra space — plus a naive
// O(n^2 log n) comparator used as the oracle in tests.
//
// Convention: for a text T of length n the returned array has n+1 entries
// and orders the suffixes of T$ where '$' is a unique sentinel smaller than
// every symbol; SA[0] == n always (the empty/sentinel suffix).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace bwaver {

/// SA-IS. `text` holds symbols in [0, alphabet_size); length must fit in
/// 32-bit indices. Returns the (n+1)-entry suffix array of T$.
std::vector<std::uint32_t> build_suffix_array(std::span<const std::uint8_t> text,
                                              unsigned alphabet_size = 4);

/// Brute-force comparison-sort construction (test oracle; small inputs only).
std::vector<std::uint32_t> build_suffix_array_naive(std::span<const std::uint8_t> text);

namespace detail {
/// Core SA-IS over an integer string that already ends with a unique,
/// minimal sentinel 0. `alphabet` is an exclusive upper bound on symbols.
void sais(const std::vector<std::uint32_t>& s, std::vector<std::uint32_t>& sa,
          std::uint32_t alphabet);
}  // namespace detail

}  // namespace bwaver
