#include "fmindex/occ_backends.hpp"

#include <stdexcept>

#include "util/bits.hpp"

namespace bwaver {

namespace {

/// Word with code `c` replicated in all 32 base slots.
inline constexpr std::uint64_t replicate_code(std::uint8_t c) noexcept {
  return 0x5555555555555555ULL * c;
}

/// Occurrences of code `c` among the low `bases` slots of `word`.
inline int count_code(std::uint64_t word, std::uint8_t c, unsigned bases) noexcept {
  const std::uint64_t diff = word ^ replicate_code(c);
  // A slot matches iff both of its bits differ-bits are zero.
  std::uint64_t match = ~diff & (~diff >> 1) & 0x5555555555555555ULL;
  if (bases < 32) match &= (std::uint64_t{1} << (2 * bases)) - 1;
  return popcount64(match);
}

}  // namespace

SampledOcc::SampledOcc(std::span<const std::uint8_t> bwt, unsigned checkpoint_words)
    : checkpoint_words_(checkpoint_words), n_(bwt.size()) {
  if (checkpoint_words == 0) {
    throw std::invalid_argument("SampledOcc: checkpoint_words must be >= 1");
  }
  const std::size_t words = (n_ + 31) / 32;
  packed_.assign(words, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    packed_[i >> 5] |= static_cast<std::uint64_t>(bwt[i] & 3) << ((i & 31) * 2);
  }

  const std::size_t blocks = words / checkpoint_words + 1;
  checkpoints_.assign(blocks, {0, 0, 0, 0});
  std::array<std::uint32_t, 4> running{0, 0, 0, 0};
  for (std::size_t w = 0; w < words; ++w) {
    if (w % checkpoint_words == 0) {
      checkpoints_[w / checkpoint_words] = running;
    }
    const unsigned bases =
        static_cast<unsigned>(w + 1 == words && (n_ & 31) != 0 ? (n_ & 31) : 32);
    for (std::uint8_t c = 0; c < 4; ++c) {
      running[c] += static_cast<std::uint32_t>(count_code(packed_[w], c, bases));
    }
  }
  if (words % checkpoint_words == 0) {
    checkpoints_[words / checkpoint_words] = running;
  }
}

void SampledOcc::save(ByteWriter& writer) const {
  writer.u64(n_);
  writer.u32(checkpoint_words_);
  for (std::uint64_t word : packed_) writer.u64(word);
  for (const auto& checkpoint : checkpoints_) {
    for (std::uint32_t count : checkpoint) writer.u32(count);
  }
}

SampledOcc SampledOcc::load(ByteReader& reader) {
  SampledOcc occ;
  occ.n_ = reader.u64();
  occ.checkpoint_words_ = reader.u32();
  if (occ.checkpoint_words_ == 0) {
    throw IoError("SampledOcc::load: corrupt checkpoint width");
  }
  const std::size_t words = (occ.n_ + 31) / 32;
  occ.packed_.resize(words);
  for (auto& word : occ.packed_) word = reader.u64();
  occ.checkpoints_.resize(words / occ.checkpoint_words_ + 1);
  for (auto& checkpoint : occ.checkpoints_) {
    for (auto& count : checkpoint) count = reader.u32();
  }
  return occ;
}

std::size_t SampledOcc::rank(std::uint8_t c, std::size_t i) const noexcept {
  const std::size_t word = i >> 5;
  const std::size_t block = word / checkpoint_words_;
  std::size_t count = checkpoints_[block][c];
  for (std::size_t w = block * checkpoint_words_; w < word; ++w) {
    count += static_cast<std::size_t>(count_code(packed_[w], c, 32));
  }
  const unsigned rem = static_cast<unsigned>(i & 31);
  if (rem != 0) {
    count += static_cast<std::size_t>(count_code(packed_[word], c, rem));
  }
  return count;
}

}  // namespace bwaver
