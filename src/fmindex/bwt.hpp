// Burrows-Wheeler transform over 2-bit DNA codes.
//
// Following the paper (Sec. III-B), the sentinel '$' is NOT stored in the
// transformed sequence: `symbols` holds the BWT column with the sentinel
// squeezed out (length n), and `primary` records the row index where the
// sentinel would sit. Rank queries over the original (n+1)-row column are
// answered on the squeezed sequence with a one-position adjustment past
// `primary` (see FmIndex::occ).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/flat_array.hpp"

namespace bwaver {

struct Bwt {
  FlatArray<std::uint8_t> symbols;    ///< squeezed BWT, codes 0..3, length n
  std::uint32_t primary = 0;          ///< row of the sentinel in the full column
  std::uint32_t text_length = 0;      ///< n

  /// Symbol of the full (n+1)-row BWT column at `row`, where the sentinel
  /// row yields 4 (a pseudo-code outside the DNA alphabet).
  std::uint8_t column(std::size_t row) const noexcept {
    if (row == primary) return 4;
    return symbols[row < primary ? row : row - 1];
  }
};

/// Builds the BWT of `text` from its (n+1)-entry suffix array.
Bwt build_bwt(std::span<const std::uint8_t> text, std::span<const std::uint32_t> sa);

/// Convenience: SA construction + BWT in one call.
Bwt build_bwt(std::span<const std::uint8_t> text);

/// Inverts the transform, reconstructing the original text. Used by the
/// round-trip property tests.
std::vector<std::uint8_t> inverse_bwt(const Bwt& bwt);

/// C table over the squeezed BWT: c_table[c] = number of full-column rows
/// whose first character sorts before code c — 1 for the sentinel plus the
/// counts of all smaller codes. Shared by the archive writer and the
/// blockwise merge (where it doubles as the rank base over partial BWTs).
std::array<std::uint32_t, 4> c_table_of(const Bwt& bwt);

}  // namespace bwaver
