// Memory planning for index construction: decides direct vs blockwise and
// fits a blockwise block size to a byte budget.
//
// The estimates are coarse, deliberately conservative upper bounds on the
// peak *transient* working set of each path (allocator slack and the
// process baseline are folded into a fixed overhead term). They only have
// to rank the two paths correctly and keep the fitted block size safe —
// the hard proof that the budget is honored is the CI leg that runs a
// blockwise build under `ulimit -v`.
#pragma once

#include <cstddef>

namespace bwaver::build {

/// Resolved strategy for building one reference's index.
struct BuildPlan {
  bool blockwise = false;
  std::size_t block_bases = 0;  ///< 0 on the direct path
  std::size_t estimated_peak_bytes = 0;
};

/// Estimated peak working set of the direct in-RAM build of an n-base
/// reference. Dominated by SA-IS suffix construction (integer work arrays
/// plus recursion, ~18 bytes/base transiently) and by the whole-archive
/// serialization buffer the direct writer materializes.
std::size_t direct_build_peak_bytes(std::size_t text_bases);

/// Estimated peak working set of the blockwise build: the text plus two
/// partial-BWT copies plus the interleaved rank structure over the old BWT
/// (~4 bytes/base together), and the per-block merge state (~24 bytes per
/// block base).
std::size_t blockwise_build_peak_bytes(std::size_t text_bases, std::size_t block_bases);

/// Largest block size (>= 1 base) whose blockwise peak estimate fits
/// `budget_bytes`. Throws std::invalid_argument when even a one-base block
/// cannot fit (the O(n) merge state alone exceeds the budget).
std::size_t derive_block_bases(std::size_t text_bases, std::size_t budget_bytes);

/// Chooses the strategy: an explicit `block_bases` forces blockwise; else a
/// non-zero `budget_bytes` selects blockwise — with a block fitted by
/// derive_block_bases() — iff the direct estimate exceeds the budget; else
/// direct.
BuildPlan plan_build(std::size_t text_bases, std::size_t budget_bytes,
                     std::size_t block_bases);

}  // namespace bwaver::build
