#include "build/blockwise_builder.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "build/archive_stream_writer.hpp"
#include "build/build_plan.hpp"
#include "fmindex/epr_occ.hpp"
#include "fmindex/occ_backends.hpp"
#include "io/byte_io.hpp"
#include "kernels/vector_occ.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bwaver::build {

namespace {

/// Rank of code `c` among the first `k` rows of the FULL (n+1)-row BWT
/// column — the squeezed symbols shifted by one past the sentinel row, as
/// in FmIndex::occ.
inline std::uint32_t occ_full(const VectorOcc& occ, std::uint32_t primary, std::uint8_t c,
                              std::uint32_t k) {
  return static_cast<std::uint32_t>(occ.rank(c, k <= primary ? k : k - 1));
}

/// On-disk row-range buckets for SA recovery. The LF-walk emits (row, pos)
/// pairs in position order; streaming the sa section needs them in row
/// order, and holding all n+1 rows would break the memory bound. Each pair
/// goes to the bucket owning its row range; load() then scatters one
/// bucket into a chunk that is small by construction.
class SaBucketSpill {
 public:
  SaBucketSpill(const std::string& path, std::size_t num_buckets, std::size_t chunk_rows)
      : chunk_rows_(chunk_rows) {
    // Bound the aggregate buffer RAM regardless of bucket count.
    const std::size_t budget_records = (std::size_t{4} << 20) / sizeof(std::uint64_t);
    buffer_records_ = std::clamp<std::size_t>(budget_records / num_buckets, 512, 8192);
    files_.reserve(num_buckets);
    paths_.reserve(num_buckets);
    buffers_.resize(num_buckets);
    for (std::size_t b = 0; b < num_buckets; ++b) {
      std::string p = path + ".sa" + std::to_string(b) + ".tmp";
      std::FILE* f = std::fopen(p.c_str(), "wb+");
      if (f == nullptr) {
        throw IoError("blockwise build: cannot open SA spill file " + p);
      }
      files_.push_back(f);
      paths_.push_back(std::move(p));
    }
  }

  ~SaBucketSpill() {
    for (std::size_t b = 0; b < files_.size(); ++b) drop(b);
  }

  SaBucketSpill(const SaBucketSpill&) = delete;
  SaBucketSpill& operator=(const SaBucketSpill&) = delete;

  void emit(std::uint32_t row, std::uint32_t pos) {
    const std::size_t b = row / chunk_rows_;
    auto& buffer = buffers_[b];
    buffer.push_back((std::uint64_t{row} << 32) | pos);
    if (buffer.size() >= buffer_records_) flush(b);
  }

  /// Scatters bucket `b` (rows [base, base + chunk.size())) into `chunk`,
  /// validating that the records are a permutation-complete cover, then
  /// deletes the spill file.
  void load(std::size_t b, std::size_t base, std::span<std::uint32_t> chunk) {
    flush(b);
    std::FILE* f = files_[b];
    std::rewind(f);
    std::vector<std::uint64_t> records(4096);
    std::size_t seen = 0;
    for (;;) {
      const std::size_t got = std::fread(records.data(), sizeof(std::uint64_t),
                                         records.size(), f);
      for (std::size_t i = 0; i < got; ++i) {
        const auto row = static_cast<std::uint32_t>(records[i] >> 32);
        const auto pos = static_cast<std::uint32_t>(records[i]);
        if (row < base || row - base >= chunk.size()) {
          throw IoError("blockwise build: SA spill row outside its bucket");
        }
        chunk[row - base] = pos;
        ++seen;
      }
      if (got < records.size()) break;
    }
    if (std::ferror(f) != 0) {
      throw IoError("blockwise build: SA spill read failed: " + paths_[b]);
    }
    if (seen != chunk.size()) {
      throw IoError("blockwise build: SA bucket is not a complete row cover");
    }
    drop(b);
  }

 private:
  void flush(std::size_t b) {
    auto& buffer = buffers_[b];
    if (buffer.empty()) return;
    if (std::fwrite(buffer.data(), sizeof(std::uint64_t), buffer.size(), files_[b]) !=
        buffer.size()) {
      throw IoError("blockwise build: SA spill write failed: " + paths_[b]);
    }
    buffer.clear();
  }

  void drop(std::size_t b) {
    if (files_[b] != nullptr) {
      std::fclose(files_[b]);
      files_[b] = nullptr;
      std::remove(paths_[b].c_str());
    }
    buffers_[b].clear();
    buffers_[b].shrink_to_fit();
  }

  std::size_t chunk_rows_;
  std::size_t buffer_records_;
  std::vector<std::FILE*> files_;
  std::vector<std::string> paths_;
  std::vector<std::vector<std::uint64_t>> buffers_;
};

}  // namespace

BlockwiseBuilder::BlockwiseBuilder(const ReferenceSet& reference, BlockwiseConfig config)
    : reference_(reference), config_(std::move(config)) {
  const std::size_t n = reference_.total_length();
  stats_.text_bases = n;
  if (config_.block_bases != 0) {
    block_bases_ = config_.block_bases;
  } else if (config_.memory_budget_bytes != 0) {
    block_bases_ = derive_block_bases(n, config_.memory_budget_bytes);
  } else {
    block_bases_ = std::max<std::size_t>(1, n);  // one block == direct order
  }
  stats_.block_bases = block_bases_;
}

void BlockwiseBuilder::report(const std::string& line) const {
  if (config_.progress) config_.progress(line);
}

Bwt BlockwiseBuilder::build_merged_bwt() {
  const std::span<const std::uint8_t> text = reference_.concatenated();
  const std::size_t n = text.size();
  const std::size_t block = std::min(block_bases_, std::max<std::size_t>(1, n));
  const std::size_t num_blocks = n == 0 ? 1 : (n + block - 1) / block;
  stats_.blocks = num_blocks;

  Bwt bwt;
  {
    obs::TraceSpan span("build:block-bwt");
    // The last (possibly short) block's suffixes are true text suffixes, so
    // plain suffix-array construction orders them directly.
    bwt = bwaver::build_bwt(text.subspan((num_blocks - 1) * block));
  }
  report("block 1/" + std::to_string(num_blocks) + " built (" +
         std::to_string(bwt.text_length) + " bases)");

  for (std::size_t j = num_blocks - 1; j-- > 0;) {
    {
      obs::TraceSpan span("build:merge");
      merge_block(text, j * block, (j + 1) * block, bwt);
    }
    ++stats_.merge_passes;
    report("block " + std::to_string(num_blocks - j) + "/" + std::to_string(num_blocks) +
           " merged (bwt now " + std::to_string(bwt.text_length) + " bases)");
  }
  return bwt;
}

void BlockwiseBuilder::merge_block(std::span<const std::uint8_t> text, std::size_t lo,
                                   std::size_t hi, Bwt& bwt) {
  const std::size_t m = hi - lo;             // new suffixes entering this pass
  const std::size_t n_old = bwt.text_length; // bwt covers X_old = T[hi..n)
  const std::uint32_t primary_old = bwt.primary;
  const VectorOcc occ(bwt.symbols);
  const std::array<std::uint32_t, 4> c_full = c_table_of(bwt);

  // d[i]: how many old suffixes sort below the new suffix T[lo+i..). One
  // LF-style step per base, right to left — prepending char c moves the
  // insert rank to C[c] + Occ(c, previous rank). Base case: X_old is itself
  // the old suffix of rank primary_old.
  std::vector<std::uint32_t> d(m + 1);
  d[m] = primary_old;
  for (std::size_t i = m; i-- > 0;) {
    const std::uint8_t c = text[lo + i];
    d[i] = c_full[c] + occ_full(occ, primary_old, c, d[i + 1]);
  }

  // Order the block's suffixes. Unequal d ranks decide immediately (an old
  // suffix sorts strictly between the two), unequal chars decide, and equal
  // pairs advance in lockstep until one side crosses the block boundary —
  // where X_old's own rank (primary_old) settles it. Distinct suffixes of
  // one terminated text never compare equal, so the walk terminates.
  std::vector<std::uint32_t> order(m);
  for (std::size_t i = 0; i < m; ++i) order[i] = static_cast<std::uint32_t>(i);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    while (true) {
      if (a == m) return primary_old < d[b];
      if (b == m) return d[a] <= primary_old;
      if (d[a] != d[b]) return d[a] < d[b];
      if (text[lo + a] != text[lo + b]) return text[lo + a] < text[lo + b];
      ++a;
      ++b;
    }
  });

  // Interleave the old full column with the new suffixes in one scan: the
  // new suffix of rank d goes after exactly d old rows, equal-d new
  // suffixes keep their sorted order (d is non-decreasing along `order`).
  const std::size_t n_new = n_old + m;
  std::vector<std::uint8_t> merged(n_new);
  std::size_t out = 0;
  std::uint32_t new_primary = 0;
  std::size_t old_rows = 0;  // old full-column rows consumed (0..n_old)
  std::size_t next_new = 0;
  const std::size_t total_rows = n_old + 1 + m;
  for (std::size_t row = 0; row < total_rows; ++row) {
    if (next_new < m && old_rows == d[order[next_new]]) {
      const std::uint32_t q = order[next_new++];
      if (q == 0) {
        new_primary = static_cast<std::uint32_t>(row);  // preceded by the sentinel
      } else {
        merged[out++] = text[lo + q - 1];
      }
    } else {
      if (old_rows == primary_old) {
        // The old sentinel row: X_old's predecessor is now T[hi - 1].
        merged[out++] = text[hi - 1];
      } else {
        merged[out++] = bwt.symbols[old_rows < primary_old ? old_rows : old_rows - 1];
      }
      ++old_rows;
    }
  }
  if (out != n_new) {
    throw std::logic_error("blockwise merge: interleave did not cover every row");
  }

  bwt.symbols = std::move(merged);
  bwt.primary = new_primary;
  bwt.text_length = static_cast<std::uint32_t>(n_new);
}

BlockwiseStats BlockwiseBuilder::build_archive(const std::string& path) {
  obs::TraceSpan span("build:blockwise");
  const std::span<const std::uint8_t> text = reference_.concatenated();
  const std::size_t n = text.size();

  const Bwt bwt = build_merged_bwt();

  KmerTableBuilder kmer(text, config_.seed_k);

  std::vector<std::string> names{kSectionMeta, kSectionText, kSectionBwt, kSectionOcc,
                                 kSectionSa};
  if (kmer.enabled()) names.emplace_back(kSectionKmer);
  if (config_.format_version >= 4) names.emplace_back(kSectionEpr);
  if (config_.write_provenance) names.emplace_back(kSectionBuild);
  ArchiveStreamWriter writer(path, config_.format_version, std::move(names));

  {
    ByteWriter meta;
    reference_.save_table(meta);
    meta.u32(bwt.text_length);
    for (const std::uint32_t c : c_table_of(bwt)) meta.u32(c);
    writer.begin_section(kSectionMeta);
    writer.append(meta.data());
    writer.end_section();
  }

  writer.begin_section(kSectionText);
  writer.append_u64(n);
  writer.pad_section_to(kSectionAlign);
  writer.append(text);
  writer.end_section();

  writer.begin_section(kSectionBwt);
  writer.append_u32(bwt.text_length);
  writer.append_u32(bwt.primary);
  writer.append_u64(bwt.symbols.size());
  writer.pad_section_to(kSectionAlign);
  writer.append(bwt.symbols);
  writer.end_section();

  {
    obs::TraceSpan occ_span("build:occ");
    ByteWriter occ_section;
    RrrWaveletOcc(bwt.symbols, config_.rrr).save_flat(occ_section);
    writer.begin_section(kSectionOcc);
    writer.append(occ_section.data());
    writer.end_section();
  }
  report("occ section encoded");

  {
    obs::TraceSpan sa_span("build:sa");
    stream_suffix_array(writer, kmer, text, bwt, path);
  }
  report("suffix array recovered and streamed");

  if (kmer.enabled()) {
    obs::TraceSpan kmer_span("build:kmer");
    ByteWriter kmer_section;
    kmer.finish().save_flat(kmer_section);
    writer.begin_section(kSectionKmer);
    writer.append(kmer_section.data());
    writer.end_section();
  }

  if (config_.format_version >= 4) {
    obs::TraceSpan epr_span("build:epr");
    ByteWriter epr_section;
    EprOcc(bwt.symbols).save_flat(epr_section);
    writer.begin_section(kSectionEpr);
    writer.append(epr_section.data());
    writer.end_section();
  }

  if (config_.write_provenance) {
    ByteWriter build_section;
    BuildProvenance provenance;
    provenance.builder = "blockwise";
    provenance.block_bases = block_bases_;
    provenance.merge_passes = stats_.merge_passes;
    provenance.memory_budget_bytes = config_.memory_budget_bytes;
    save_build_provenance(build_section, provenance);
    writer.begin_section(kSectionBuild);
    writer.append(build_section.data());
    writer.end_section();
  }

  {
    obs::TraceSpan finish_span("build:finish");
    writer.finish();
  }
  stats_.bytes_written = writer.bytes_written();
  report("archive committed (" + std::to_string(stats_.bytes_written) + " bytes)");

  const obs::ObsContext& ctx = obs::current_context();
  obs::MetricsRegistry& metrics =
      ctx.metrics != nullptr ? *ctx.metrics : obs::default_registry();
  const obs::Labels labels{{"builder", "blockwise"}};
  metrics.counter("bwaver_build_blocks_total", "Index-construction text blocks built",
                  labels)
      .inc(stats_.blocks);
  metrics.counter("bwaver_build_merge_passes_total",
                  "Blockwise BWT rank-interleave merge passes", labels)
      .inc(stats_.merge_passes);
  metrics.counter("bwaver_build_bytes_written_total",
                  "Index archive bytes written by builds", labels)
      .inc(stats_.bytes_written);
  return stats_;
}

void BlockwiseBuilder::stream_suffix_array(ArchiveStreamWriter& writer,
                                           KmerTableBuilder& kmer,
                                           std::span<const std::uint8_t> text,
                                           const Bwt& bwt, const std::string& path) {
  const std::size_t n = text.size();
  const std::size_t rows_total = n + 1;
  // Chunk rows within the configured byte bound, but never more buckets
  // than open spill files comfortably allow.
  constexpr std::size_t kMaxBuckets = 256;
  std::size_t chunk_rows =
      std::max<std::size_t>(1, config_.sa_chunk_bytes / sizeof(std::uint32_t));
  std::size_t num_buckets = (rows_total + chunk_rows - 1) / chunk_rows;
  if (num_buckets > kMaxBuckets) {
    chunk_rows = (rows_total + kMaxBuckets - 1) / kMaxBuckets;
    num_buckets = (rows_total + chunk_rows - 1) / chunk_rows;
  }

  writer.begin_section(kSectionSa);
  writer.append_u64(rows_total);
  writer.pad_section_to(kSectionAlign);

  const VectorOcc occ(bwt.symbols);
  const std::array<std::uint32_t, 4> c_full = c_table_of(bwt);

  if (num_buckets <= 1) {
    // Everything fits one chunk: scatter in RAM, skip the spill files.
    std::vector<std::uint32_t> sa(rows_total);
    std::uint32_t row = 0;
    sa[0] = static_cast<std::uint32_t>(n);
    for (std::size_t i = n; i-- > 0;) {
      const std::uint8_t c = text[i];
      row = c_full[c] + occ_full(occ, bwt.primary, c, row);
      sa[row] = static_cast<std::uint32_t>(i);
    }
    for (std::size_t r = 0; r < rows_total; ++r) {
      kmer.feed(static_cast<std::uint32_t>(r), sa[r]);
    }
    writer.append_raw_u32(sa);
    writer.end_section();
    return;
  }

  // The LF-walk visits suffixes longest-first (position order), emitting
  // each row exactly once; rows land in their row-range bucket on disk.
  SaBucketSpill spill(path, num_buckets, chunk_rows);
  spill.emit(0, static_cast<std::uint32_t>(n));
  std::uint32_t row = 0;
  for (std::size_t i = n; i-- > 0;) {
    const std::uint8_t c = text[i];
    row = c_full[c] + occ_full(occ, bwt.primary, c, row);
    spill.emit(row, static_cast<std::uint32_t>(i));
  }

  std::vector<std::uint32_t> chunk;
  for (std::size_t b = 0; b < num_buckets; ++b) {
    const std::size_t base = b * chunk_rows;
    const std::size_t count = std::min(chunk_rows, rows_total - base);
    chunk.assign(count, 0);
    spill.load(b, base, chunk);
    for (std::size_t r = 0; r < count; ++r) {
      kmer.feed(static_cast<std::uint32_t>(base + r), chunk[r]);
    }
    writer.append_raw_u32(chunk);
  }
  writer.end_section();
}

}  // namespace bwaver::build
