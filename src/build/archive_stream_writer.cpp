#include "build/archive_stream_writer.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "io/byte_io.hpp"
#include "io/checksum.hpp"

namespace bwaver::build {

namespace {

constexpr std::size_t kFlushThreshold = std::size_t{1} << 20;

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw IoError("ArchiveStreamWriter: " + what + ": " + path + ": " + std::strerror(errno));
}

/// fsync on the containing directory makes the rename itself durable.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse directory opens
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

ArchiveStreamWriter::ArchiveStreamWriter(std::string path, std::uint32_t format_version,
                                         std::vector<std::string> section_names)
    : path_(std::move(path)),
      temp_path_(path_ + ".tmp"),
      format_version_(format_version),
      section_names_(std::move(section_names)) {
  if (format_version_ < 3 || format_version_ > kArchiveVersionLatest) {
    throw std::invalid_argument("ArchiveStreamWriter: only flat formats (v3+) stream");
  }
  if (section_names_.empty()) {
    throw std::invalid_argument("ArchiveStreamWriter: no sections declared");
  }
  fd_ = ::open(temp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) fail("cannot open", temp_path_);
  // The header region's size depends only on the declared names; reserve it
  // with zeros now and back-fill the rendered header in finish().
  std::vector<ArchiveSectionPlan> placeholder;
  placeholder.reserve(section_names_.size());
  for (const std::string& name : section_names_) placeholder.push_back({name, 0, 0});
  buffer_.assign(archive_payload_start(placeholder), 0);
}

ArchiveStreamWriter::~ArchiveStreamWriter() {
  if (!finished_) abort();
}

void ArchiveStreamWriter::begin_section(const std::string& name) {
  if (finished_ || in_section_) {
    throw std::logic_error("ArchiveStreamWriter: begin_section out of sequence");
  }
  if (sections_.size() >= section_names_.size() ||
      section_names_[sections_.size()] != name) {
    throw std::logic_error("ArchiveStreamWriter: section '" + name +
                           "' does not match the declared order");
  }
  // Flat sections start on 64-byte file offsets (render_archive_header
  // computes the same rounded offsets from the section lengths).
  const std::uint64_t pos = bytes_written();
  const std::uint64_t aligned = (pos + kSectionAlign - 1) & ~(kSectionAlign - 1);
  buffer_.insert(buffer_.end(), aligned - pos, 0);
  section_start_ = aligned;
  section_crc_ = 0;
  in_section_ = true;
}

void ArchiveStreamWriter::append(std::span<const std::uint8_t> data) {
  if (!in_section_) throw std::logic_error("ArchiveStreamWriter: append outside section");
  section_crc_ = crc32_ieee(data, section_crc_);
  buffer_.insert(buffer_.end(), data.begin(), data.end());
  if (buffer_.size() >= kFlushThreshold) flush();
}

void ArchiveStreamWriter::append_u32(std::uint32_t v) {
  std::uint8_t bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
  append(bytes);
}

void ArchiveStreamWriter::append_u64(std::uint64_t v) {
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
  append(bytes);
}

void ArchiveStreamWriter::append_raw_u32(std::span<const std::uint32_t> data) {
  append({reinterpret_cast<const std::uint8_t*>(data.data()), data.size_bytes()});
}

void ArchiveStreamWriter::pad_section_to(std::size_t alignment) {
  if (!in_section_ || alignment == 0) return;
  const std::uint64_t section_bytes = bytes_written() - section_start_;
  const std::uint64_t rem = section_bytes % alignment;
  if (rem == 0) return;
  const std::vector<std::uint8_t> zeros(alignment - rem, 0);
  append(zeros);
}

void ArchiveStreamWriter::end_section() {
  if (!in_section_) throw std::logic_error("ArchiveStreamWriter: end_section outside section");
  sections_.push_back({section_names_[sections_.size()],
                       bytes_written() - section_start_, section_crc_});
  in_section_ = false;
}

void ArchiveStreamWriter::finish() {
  if (finished_ || in_section_ || sections_.size() != section_names_.size()) {
    throw std::logic_error("ArchiveStreamWriter: finish with unwritten sections");
  }
  flush();
  const std::vector<std::uint8_t> header = render_archive_header(format_version_, sections_);
  write_at(0, header);
  if (::fsync(fd_) != 0) fail("fsync failed", temp_path_);
  if (::close(fd_) != 0) {
    fd_ = -1;
    fail("close failed", temp_path_);
  }
  fd_ = -1;
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) fail("rename failed", path_);
  fsync_parent_dir(path_);
  finished_ = true;
}

void ArchiveStreamWriter::flush() {
  std::size_t done = 0;
  while (done < buffer_.size()) {
    const ssize_t n = ::write(fd_, buffer_.data() + done, buffer_.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write failed", temp_path_);
    }
    done += static_cast<std::size_t>(n);
  }
  offset_ += buffer_.size();
  buffer_.clear();
}

void ArchiveStreamWriter::write_at(std::uint64_t file_offset,
                                   std::span<const std::uint8_t> data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                               static_cast<off_t>(file_offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("pwrite failed", temp_path_);
    }
    done += static_cast<std::size_t>(n);
  }
}

void ArchiveStreamWriter::abort() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  ::unlink(temp_path_.c_str());
}

}  // namespace bwaver::build
