// Streaming writer for the flat (v3+) index-archive layout.
//
// write_index_archive materializes the whole archive in one ByteWriter
// before touching the disk — fine at E. coli scale, but the blockwise
// constructor exists precisely because the full index must never be
// resident. This writer produces the identical file incrementally: section
// names are declared up front (the header size, and therefore every payload
// offset, depends only on them), payloads are appended section by section
// with running CRCs, and finish() back-fills the header rendered by the
// same render_archive_header() the in-RAM writer uses — so the two paths
// are byte-identical by construction.
//
// Crash safety: all bytes go to `path + ".tmp"`; finish() fsyncs the file,
// renames it over `path`, and fsyncs the directory. Destroying the writer
// without finish() unlinks the temp file, and a hard crash leaves at most
// a stale ".tmp" beside an untouched previous archive.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "store/index_archive.hpp"

namespace bwaver::build {

class ArchiveStreamWriter {
 public:
  /// Opens `path + ".tmp"` and reserves the header region. `section_names`
  /// fixes the section order; every declared section must be written, in
  /// order, before finish(). Only flat formats (v3+) are supported.
  ArchiveStreamWriter(std::string path, std::uint32_t format_version,
                      std::vector<std::string> section_names);
  ~ArchiveStreamWriter();

  ArchiveStreamWriter(const ArchiveStreamWriter&) = delete;
  ArchiveStreamWriter& operator=(const ArchiveStreamWriter&) = delete;

  /// Starts the next declared section (64-byte aligned in the file). Throws
  /// if `name` is not the next undeclared-section name.
  void begin_section(const std::string& name);

  void append(std::span<const std::uint8_t> data);
  void append_u32(std::uint32_t v);
  void append_u64(std::uint64_t v);
  /// Raw little-endian element words, as ByteWriter::raw_u32 writes them.
  void append_raw_u32(std::span<const std::uint32_t> data);
  /// Zero padding to `alignment` relative to the current section's start
  /// (ByteWriter::pad_to within a per-section buffer).
  void pad_section_to(std::size_t alignment);

  void end_section();

  /// Writes the header, fsyncs, atomically renames the temp file onto
  /// `path`, and fsyncs the directory. The writer is unusable afterwards.
  void finish();

  /// Total archive bytes (header + padding + payloads) written so far.
  std::uint64_t bytes_written() const noexcept { return offset_ + buffer_.size(); }

 private:
  void flush();
  void write_at(std::uint64_t file_offset, std::span<const std::uint8_t> data);
  void abort() noexcept;

  std::string path_;
  std::string temp_path_;
  std::uint32_t format_version_ = 0;
  std::vector<std::string> section_names_;
  std::vector<ArchiveSectionPlan> sections_;  ///< completed sections
  int fd_ = -1;
  std::vector<std::uint8_t> buffer_;
  std::uint64_t offset_ = 0;         ///< file offset of the first unflushed byte
  std::uint64_t section_start_ = 0;  ///< absolute offset of the open section
  std::uint32_t section_crc_ = 0;
  bool in_section_ = false;
  bool finished_ = false;
};

}  // namespace bwaver::build
