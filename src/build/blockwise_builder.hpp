// Memory-bounded blockwise BWT/FM-index constructor.
//
// The direct build path (suffix array of the whole text, then BWT, then the
// succinct structures, then one whole-archive serialization buffer) peaks
// around 20 bytes/base — chr21 scale on a laptop, nowhere near the
// full-genome references the roadmap targets. Following Chen et al., "A
// Memory-Efficient FM-Index Constructor for NGS Applications on FPGAs"
// (PAPERS.md), this builder keeps the peak near 4 bytes/base plus a
// configurable per-block term:
//
//   1. Partition the text T into fixed-size blocks. The BWT of the last
//      block's suffix X = T[start..n) is built directly (its suffixes are
//      true suffixes of T, so plain suffix-array construction applies).
//   2. Merge each earlier block right-to-left into the accumulated BWT via
//      rank-based interleaving: a backward pass computes D[i] — the rank of
//      the new suffix T[i..] among the old suffixes — with one rank query
//      per base against a VectorOcc over the old BWT; the block's suffixes
//      are then ordered (chars within the block break most ties, the D
//      ranks and the old primary row settle suffixes that run past the
//      block boundary) and the two BWT columns are interleaved in one
//      linear scan. Only the text, the old and merged BWT columns, and the
//      O(block) merge state are ever resident.
//   3. Stream the archive sections through ArchiveStreamWriter in the flat
//      v3/v4 layout. The suffix array is never materialized: an LF-walk
//      over the final BWT emits (row, position) pairs into row-range
//      buckets on disk, and each bucket is scattered into a bounded chunk,
//      fed to the incremental KmerTableBuilder, and streamed out in row
//      order.
//
// The resulting archive is byte-identical to write_index_archive over the
// directly built index (same sections, same layout, same header), which is
// what the parameterized identity suite in tests/build_blockwise_test.cpp
// pins down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "fmindex/bwt.hpp"
#include "fmindex/kmer_table.hpp"
#include "fmindex/reference_set.hpp"
#include "store/index_archive.hpp"
#include "succinct/rrr_vector.hpp"

namespace bwaver::build {

class ArchiveStreamWriter;

/// Receives human-readable progress lines ("block 3/12 merged ...").
using ProgressFn = std::function<void(const std::string&)>;

struct BlockwiseConfig {
  /// Block size in bases; 0 derives it from the budget (or uses one block
  /// covering the whole text when the budget is 0 too).
  std::size_t block_bases = 0;
  /// Peak-memory target in bytes (0 = unbounded); see build_plan.hpp.
  std::size_t memory_budget_bytes = 0;
  /// Seed-table k, capped exactly like the direct path (0 disables).
  unsigned seed_k = KmerSeedTable::kDefaultK;
  RrrParams rrr{};
  std::uint32_t format_version = kArchiveVersionLatest;
  /// Appends the optional "build" provenance section. Off by default so
  /// blockwise output stays byte-identical to plain write_index_archive.
  bool write_provenance = false;
  /// SA-recovery scatter chunk (bytes); the default suits the default
  /// budget, tests shrink it to force the multi-bucket path.
  std::size_t sa_chunk_bytes = std::size_t{8} << 20;
  ProgressFn progress;
};

struct BlockwiseStats {
  std::size_t text_bases = 0;
  std::size_t block_bases = 0;
  std::size_t blocks = 0;
  std::size_t merge_passes = 0;
  std::uint64_t bytes_written = 0;
};

class BlockwiseBuilder {
 public:
  /// `reference` must outlive the builder; only its concatenated text and
  /// sequence table are read.
  BlockwiseBuilder(const ReferenceSet& reference, BlockwiseConfig config);

  /// The merged BWT of the whole reference, block by block. Exposed for the
  /// identity tests; build_archive() runs it internally.
  Bwt build_merged_bwt();

  /// Builds the full index and streams it into the archive at `path`
  /// (temp + fsync + atomic rename). Returns the build statistics; also
  /// records the bwaver_build_* counters against the ambient metrics
  /// registry.
  BlockwiseStats build_archive(const std::string& path);

 private:
  void merge_block(std::span<const std::uint8_t> text, std::size_t lo, std::size_t hi,
                   Bwt& bwt);
  void stream_suffix_array(ArchiveStreamWriter& writer, KmerTableBuilder& kmer,
                           std::span<const std::uint8_t> text, const Bwt& bwt,
                           const std::string& path);
  void report(const std::string& line) const;

  const ReferenceSet& reference_;
  BlockwiseConfig config_;
  std::size_t block_bases_ = 0;
  BlockwiseStats stats_;
};

}  // namespace bwaver::build
