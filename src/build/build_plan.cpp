#include "build/build_plan.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace bwaver::build {

namespace {

// Direct path: text + SA (5 bytes/base) + SA-IS work arrays and recursion
// (~13 bytes/base worst observed) + the serialized sections and the final
// whole-archive buffer (~2x the ~7 bytes/base archive payload).
constexpr std::size_t kDirectBytesPerBase = 20;

// Blockwise resident state near the last merge: text (1) + old and merged
// BWT copies (2) + VectorOcc over the old BWT (1/3) + SA-walk chunks.
constexpr std::size_t kBlockwiseBytesPerBase = 4;

// Per-block merge state: the D rank array and the sort order (8 bytes per
// block base) plus headroom for the comparator's transient state and the
// occ/epr section encoders that scale with the block at small block sizes.
constexpr std::size_t kBlockwiseBytesPerBlockBase = 24;

// Process baseline, allocator slack, stacks, and the small fixed tables.
constexpr std::size_t kFixedOverheadBytes = std::size_t{32} << 20;

}  // namespace

std::size_t direct_build_peak_bytes(std::size_t text_bases) {
  return text_bases * kDirectBytesPerBase + kFixedOverheadBytes;
}

std::size_t blockwise_build_peak_bytes(std::size_t text_bases, std::size_t block_bases) {
  return text_bases * kBlockwiseBytesPerBase +
         block_bases * kBlockwiseBytesPerBlockBase + kFixedOverheadBytes;
}

std::size_t derive_block_bases(std::size_t text_bases, std::size_t budget_bytes) {
  const std::size_t floor_bytes = blockwise_build_peak_bytes(text_bases, 1);
  if (budget_bytes < floor_bytes) {
    throw std::invalid_argument(
        "build: memory budget " + std::to_string(budget_bytes) +
        " bytes is below the blockwise floor of " + std::to_string(floor_bytes) +
        " bytes for a " + std::to_string(text_bases) + "-base reference");
  }
  const std::size_t spare = budget_bytes - blockwise_build_peak_bytes(text_bases, 0);
  const std::size_t block = std::max<std::size_t>(1, spare / kBlockwiseBytesPerBlockBase);
  return std::min(block, std::max<std::size_t>(1, text_bases));
}

BuildPlan plan_build(std::size_t text_bases, std::size_t budget_bytes,
                     std::size_t block_bases) {
  BuildPlan plan;
  if (block_bases != 0) {
    plan.blockwise = true;
    plan.block_bases = block_bases;
    plan.estimated_peak_bytes = blockwise_build_peak_bytes(text_bases, block_bases);
    return plan;
  }
  plan.estimated_peak_bytes = direct_build_peak_bytes(text_bases);
  if (budget_bytes != 0 && plan.estimated_peak_bytes > budget_bytes) {
    plan.blockwise = true;
    plan.block_bases = derive_block_bases(text_bases, budget_bytes);
    plan.estimated_peak_bytes = blockwise_build_peak_bytes(text_bases, plan.block_bases);
  }
  return plan;
}

}  // namespace bwaver::build
