#include "fpga/runtime.hpp"

#include <cmath>
#include <stdexcept>

namespace bwaver {

EventPtr FpgaRuntime::record(CommandType type, std::uint64_t duration_ns) {
  auto event = std::make_shared<Event>();
  event->type = type;
  event->queued_ns = timeline_ns_;
  event->submitted_ns = timeline_ns_;
  event->start_ns = timeline_ns_;
  event->end_ns = timeline_ns_ + duration_ns;
  timeline_ns_ = event->end_ns;
  events_.push_back(event);
  return event;
}

std::uint64_t FpgaRuntime::transfer_ns(std::size_t bytes) const noexcept {
  const double seconds =
      static_cast<double>(bytes) / spec_.pcie_bandwidth_bytes_per_sec;
  return static_cast<std::uint64_t>(std::llround(seconds * 1e9));
}

EventPtr FpgaRuntime::program(const FmIndex<RrrWaveletOcc>& index) {
  kernel_ = std::make_unique<HlsMapperKernel>(spec_, index);
  kernel_stats_ = KernelStats{};
  const std::uint64_t bitstream = static_cast<std::uint64_t>(
      std::llround(spec_.bitstream_program_seconds * 1e9));
  const std::uint64_t pcie = transfer_ns(kernel_->structure_bytes());
  const std::uint64_t load = static_cast<std::uint64_t>(
      std::llround(spec_.cycles_to_seconds(kernel_->structure_load_cycles()) * 1e9));
  return record(CommandType::kProgram, bitstream + pcie + load);
}

EventPtr FpgaRuntime::enqueue_write(std::size_t bytes) {
  return record(CommandType::kWriteBuffer, transfer_ns(bytes));
}

EventPtr FpgaRuntime::enqueue_kernel(std::span<const QueryPacket> batch,
                                     std::vector<QueryResult>& results) {
  if (!kernel_) {
    throw std::logic_error("FpgaRuntime: enqueue_kernel before program()");
  }
  const KernelStats stats = kernel_->run_batch(batch, results);
  kernel_stats_ += stats;
  const std::uint64_t duration = static_cast<std::uint64_t>(
      std::llround(spec_.cycles_to_seconds(stats.compute_cycles) * 1e9));
  return record(CommandType::kKernel, duration);
}

EventPtr FpgaRuntime::enqueue_read(std::size_t bytes) {
  return record(CommandType::kReadBuffer, transfer_ns(bytes));
}

}  // namespace bwaver
