// 512-bit query packet — the host/device interface unit (paper, Sec. III-C:
// "we implemented the query as a 512-bit data structure, which stores the
// sequence to be searched and some additional information", sized for the
// memory burst and for reads up to 176 bases).
//
// Layout (64 bytes):
//   bytes  0..43  2-bit-packed bases, LSB-first within each byte (176 max)
//   bytes 44..45  read length (u16, little-endian)
//   bytes 46..47  flags (reserved, zero)
//   bytes 48..51  query id (u32)
//   bytes 52..63  padding (zero)
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace bwaver {

struct QueryPacket {
  static constexpr unsigned kMaxBases = 176;
  static constexpr unsigned kBytes = 64;

  std::array<std::uint8_t, kBytes> raw{};

  static QueryPacket encode(std::span<const std::uint8_t> codes, std::uint32_t id) {
    if (codes.size() > kMaxBases) {
      throw std::length_error("QueryPacket: read longer than 176 bases");
    }
    if (codes.empty()) {
      throw std::invalid_argument("QueryPacket: empty read");
    }
    QueryPacket packet;
    for (std::size_t i = 0; i < codes.size(); ++i) {
      packet.raw[i >> 2] |= static_cast<std::uint8_t>((codes[i] & 3) << ((i & 3) * 2));
    }
    const auto length = static_cast<std::uint16_t>(codes.size());
    packet.raw[44] = static_cast<std::uint8_t>(length);
    packet.raw[45] = static_cast<std::uint8_t>(length >> 8);
    packet.raw[48] = static_cast<std::uint8_t>(id);
    packet.raw[49] = static_cast<std::uint8_t>(id >> 8);
    packet.raw[50] = static_cast<std::uint8_t>(id >> 16);
    packet.raw[51] = static_cast<std::uint8_t>(id >> 24);
    return packet;
  }

  std::uint16_t length() const noexcept {
    return static_cast<std::uint16_t>(raw[44] | (raw[45] << 8));
  }

  std::uint32_t id() const noexcept {
    return static_cast<std::uint32_t>(raw[48]) | (static_cast<std::uint32_t>(raw[49]) << 8) |
           (static_cast<std::uint32_t>(raw[50]) << 16) |
           (static_cast<std::uint32_t>(raw[51]) << 24);
  }

  std::uint8_t base(unsigned i) const noexcept {
    return static_cast<std::uint8_t>((raw[i >> 2] >> ((i & 3) * 2)) & 3);
  }

  std::vector<std::uint8_t> decode() const {
    const unsigned len = length();
    if (len == 0 || len > kMaxBases) {
      throw std::invalid_argument("QueryPacket: malformed length field");
    }
    std::vector<std::uint8_t> codes(len);
    for (unsigned i = 0; i < len; ++i) codes[i] = base(i);
    return codes;
  }
};

/// Per-query result returned by the kernel: the SA intervals of the read and
/// of its reverse complement (32 bytes on the wire; positions are resolved
/// by the host through the suffix array).
struct QueryResult {
  static constexpr unsigned kBytes = 32;

  std::uint32_t id = 0;
  std::uint32_t fwd_lo = 0, fwd_hi = 0;  ///< empty when lo >= hi
  std::uint32_t rev_lo = 0, rev_hi = 0;

  bool fwd_mapped() const noexcept { return fwd_lo < fwd_hi; }
  bool rev_mapped() const noexcept { return rev_lo < rev_hi; }
  bool mapped() const noexcept { return fwd_mapped() || rev_mapped(); }
};

}  // namespace bwaver
