// Power/energy model. The paper uses fixed reference power draws (25 W for
// the Alveo U200, 135 W for the Xeon E5-2698 v3) and reports "power
// efficiency" as the energy ratio: (t_base * P_base) / (t_x * P_x) —
// i.e. speed-up scaled by the power ratio.
#pragma once

namespace bwaver {

struct PowerReport {
  double seconds = 0.0;
  double watts = 0.0;

  double joules() const noexcept { return seconds * watts; }
};

/// How many times less energy `candidate` uses than `baseline`
/// (the paper's "power efficiency" column, with the FPGA as baseline 1x).
inline double power_efficiency_ratio(const PowerReport& baseline,
                                     const PowerReport& candidate) noexcept {
  return baseline.joules() > 0.0 ? candidate.joules() / baseline.joules() : 0.0;
}

/// Plain speed-up factor.
inline double speedup_ratio(double baseline_seconds, double candidate_seconds) noexcept {
  return baseline_seconds > 0.0 ? candidate_seconds / baseline_seconds : 0.0;
}

}  // namespace bwaver
