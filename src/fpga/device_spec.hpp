// Device model parameters for the FPGA substrate.
//
// The paper deploys on a Xilinx Alveo U200 (UltraScale+ XCU200). We cannot
// run real hardware here, so the kernel executes functionally on the host
// while a cycle model accounts time. Every assumption is a named parameter
// below so the ablation benches can vary it:
//
//   * on-chip capacity — XCU200 public specs: ~75.9 Mb BRAM + 270 Mb URAM
//     (~43 MB combined). The whole succinct structure must fit (the paper
//     stores it entirely on-chip and caps references at ~100 Mbp).
//   * 512-bit ports — the paper sets every port to 512-bit bursts; one beat
//     moves 64 B per kernel cycle once a burst is open.
//   * kernel clock — SDAccel-era Alveo designs typically close timing at
//     250-300 MHz; we assume 250 MHz.
//   * rank-unit pipeline — one backward-search step issues 2 binary ranks
//     per interval bound (one per wavelet-tree level) on 2 bounds; the
//     hardware folds the O(sf) class scan into a wide BRAM read plus an
//     adder tree, so the steady-state initiation interval of the step
//     pipeline is ceil(sf * 4 bits / port width) cycles. Forward and
//     reverse-complement searches run on independent engines in parallel
//     (paper, Sec. III-C).
//   * power — the paper's reference values: 25 W for the U200, 135 W for
//     the Xeon E5-2698 v3.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bwaver {

struct DeviceSpec {
  const char* name = "xilinx_u200_model";

  // On-chip memory (bytes).
  std::size_t bram_bytes = 9'480'000;    ///< ~75.9 Mb block RAM
  std::size_t uram_bytes = 33'750'000;   ///< ~270 Mb UltraRAM

  // Clocks and links.
  double kernel_clock_hz = 250e6;
  double pcie_bandwidth_bytes_per_sec = 12e9;  ///< Gen3 x16 effective

  /// One-time device programming (xclbin load) when the kernel is set up.
  /// Alveo-class boards take a few hundred ms; this is the fixed overhead
  /// the paper's Table II shows amortizing as the batch grows.
  double bitstream_program_seconds = 0.18;

  // Data-path widths.
  unsigned port_width_bits = 512;  ///< burst beat width, paper Sec. III-C
  unsigned class_field_bits = 4;   ///< RRR class entries

  /// Parallel query engines. The paper's design is single-core (its future
  /// work: "leverage the FPGA's parallelism to develop a multi-core
  /// architecture where multiple DNA fragments are mapped at the same
  /// time"); values > 1 model that extension, bounded by fabric/BRAM-port
  /// replication in reality.
  unsigned num_query_engines = 1;

  // Pipeline timing (kernel cycles).
  unsigned bram_read_latency = 2;       ///< registered BRAM output
  unsigned table_lookup_latency = 2;    ///< Global Rank Table access
  unsigned adder_tree_latency_per_8 = 1;///< one tree stage per 8 summands
  unsigned pipeline_fill_cycles = 40;   ///< one-time fill/drain per batch
  unsigned query_issue_overhead = 4;    ///< per-query decode/revcomp/writeback (II)

  // Power.
  double board_power_watts = 25.0;
  double reference_cpu_watts = 135.0;

  std::size_t total_on_chip_bytes() const noexcept { return bram_bytes + uram_bytes; }

  /// Bytes moved per kernel cycle by one 512-bit port.
  std::size_t port_bytes_per_cycle() const noexcept { return port_width_bits / 8; }

  double cycles_to_seconds(std::uint64_t cycles) const noexcept {
    return static_cast<double>(cycles) / kernel_clock_hz;
  }
};

}  // namespace bwaver
