#include "fpga/bram.hpp"

namespace bwaver {

void BramAllocator::allocate(const std::string& label, std::size_t bytes) {
  if (used_ + bytes > capacity_) {
    throw DeviceCapacityError(
        "BramAllocator: allocation '" + label + "' of " + std::to_string(bytes) +
        " bytes exceeds on-chip capacity (" + std::to_string(used_) + "/" +
        std::to_string(capacity_) + " bytes in use)");
  }
  used_ += bytes;
  allocations_.push_back(Allocation{label, bytes});
}

}  // namespace bwaver
