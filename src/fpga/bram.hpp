// On-chip memory allocator model. Tracks named allocations against the
// device's BRAM+URAM capacity and fails loudly when a structure does not
// fit — the hardware analogue of a placement/mapping failure, and the
// reason the paper caps reference length at ~100 Mbp.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "fpga/device_spec.hpp"

namespace bwaver {

class DeviceCapacityError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BramAllocator {
 public:
  explicit BramAllocator(const DeviceSpec& spec) : capacity_(spec.total_on_chip_bytes()) {}

  /// Reserves `bytes` under `label`; throws DeviceCapacityError when the
  /// combined on-chip capacity would be exceeded.
  void allocate(const std::string& label, std::size_t bytes);

  /// Releases every allocation (device reprogram).
  void reset() noexcept {
    allocations_.clear();
    used_ = 0;
  }

  std::size_t used_bytes() const noexcept { return used_; }
  std::size_t capacity_bytes() const noexcept { return capacity_; }
  std::size_t free_bytes() const noexcept { return capacity_ - used_; }

  struct Allocation {
    std::string label;
    std::size_t bytes;
  };
  const std::vector<Allocation>& allocations() const noexcept { return allocations_; }

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::vector<Allocation> allocations_;
};

}  // namespace bwaver
