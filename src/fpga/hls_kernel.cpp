#include "fpga/hls_kernel.hpp"

#include <algorithm>

#include "fmindex/dna.hpp"
#include "util/bits.hpp"

namespace bwaver {

namespace {

/// Backward search that also reports the number of executed steps (the
/// hardware exits as soon as the interval empties).
struct StrandSearch {
  SaInterval interval;
  unsigned steps = 0;
  bool early_exit = false;
};

StrandSearch search_counting(const FmIndex<RrrWaveletOcc>& index,
                             std::span<const std::uint8_t> codes) {
  StrandSearch out;
  out.interval = index.full_interval();
  for (std::size_t k = codes.size(); k-- > 0;) {
    out.interval = index.step(out.interval, codes[k]);
    ++out.steps;
    if (out.interval.empty()) {
      out.early_exit = out.steps < codes.size();
      break;
    }
  }
  return out;
}

}  // namespace

HlsMapperKernel::HlsMapperKernel(const DeviceSpec& spec,
                                 const FmIndex<RrrWaveletOcc>& index)
    : spec_(spec), index_(&index), bram_(spec) {
  const auto& occ = index.occ_backend();
  bram_.allocate("wavelet_tree_rrr_nodes", occ.size_in_bytes());
  bram_.allocate("global_rank_table", occ.shared_table_bytes());
  bram_.allocate("c_array_and_primary", 4 * sizeof(std::uint32_t) + sizeof(std::uint32_t));
  structure_bytes_ = bram_.used_bytes();

  // II: the superblock class scan reads sf 4-bit fields through the wide
  // port; everything downstream pipelines behind it.
  const unsigned sf = occ.params().superblock_factor;
  step_ii_ = static_cast<unsigned>(std::max<std::uint64_t>(
      1, div_ceil(static_cast<std::uint64_t>(sf) * spec.class_field_bits,
                  spec.port_width_bits)));

  // Latency of one binary rank: BRAM read + class-scan beats + adder tree +
  // table lookup; a symbol rank chains one per wavelet-tree level.
  const unsigned scan_beats = step_ii_;
  const unsigned tree_stages =
      spec.adder_tree_latency_per_8 * ceil_log2(div_ceil(sf, 8) + 1);
  const unsigned binary_rank_latency = spec.bram_read_latency + scan_beats +
                                       tree_stages + spec.table_lookup_latency;
  const unsigned levels = 2;  // log2(4) for the DNA alphabet
  step_latency_ = levels * binary_rank_latency;
}

std::uint64_t HlsMapperKernel::structure_load_cycles() const noexcept {
  return div_ceil(structure_bytes_, spec_.port_bytes_per_cycle());
}

KernelStats HlsMapperKernel::run_batch(std::span<const QueryPacket> batch,
                                       std::vector<QueryResult>& results) const {
  KernelStats stats;
  if (batch.empty()) return stats;

  // Multi-core extension: queries round-robin across engines; the batch
  // finishes when the busiest engine drains.
  const unsigned engines = std::max(1u, spec_.num_query_engines);
  std::vector<std::uint64_t> engine_cycles(engines, 0);
  std::size_t next_engine = 0;
  for (const QueryPacket& packet : batch) {
    const auto codes = packet.decode();
    const auto rc = dna_reverse_complement(codes);

    const StrandSearch fwd = search_counting(*index_, codes);
    const StrandSearch rev = search_counting(*index_, rc);

    QueryResult result;
    result.id = packet.id();
    result.fwd_lo = fwd.interval.lo;
    result.fwd_hi = fwd.interval.hi;
    result.rev_lo = rev.interval.lo;
    result.rev_hi = rev.interval.hi;
    results.push_back(result);

    // Two strand units per engine: the query occupies its engine's
    // pipeline for the slower strand.
    const unsigned steps = std::max(fwd.steps, rev.steps);
    engine_cycles[next_engine] +=
        spec_.query_issue_overhead + static_cast<std::uint64_t>(steps) * step_ii_;
    next_engine = (next_engine + 1) % engines;
    stats.queries += 1;
    stats.steps_executed += steps;
    // Each executed step issues 2 bounds x 2 wavelet levels binary ranks,
    // on each engine that is still active.
    stats.rank_queries += 4ull * (fwd.steps + rev.steps);
    stats.early_exits += (fwd.early_exit ? 1 : 0) + (rev.early_exit ? 1 : 0);
  }
  stats.compute_cycles = spec_.pipeline_fill_cycles + step_latency_ +
                         *std::max_element(engine_cycles.begin(), engine_cycles.end());
  return stats;
}

}  // namespace bwaver
