// Cycle-approximate model of the BWaveR HLS mapping kernel (paper,
// Sec. III-C).
//
// Functional behaviour: the kernel executes the real backward search over
// the real RRR wavelet tree, so results are bit-exact with the software
// mapper. Timing behaviour: a throughput model of a deeply pipelined HLS
// design —
//
//   * the whole succinct structure lives in on-chip BRAM/URAM (checked by
//     the BramAllocator at program time);
//   * the forward and reverse-complement searches run on two independent
//     engines, so a query costs the *slower* strand's step count;
//   * backward-search steps of one query form a sequential recurrence, but
//     the rank pipeline interleaves many in-flight queries, so steady-state
//     cost per step is the initiation interval (II) of the rank unit, not
//     its latency: II = ceil(sf * class_bits / port_width) cycles (the wide
//     BRAM read of the superblock's class fields is the II bottleneck; the
//     adder tree and Global-Rank-Table lookup pipeline behind it);
//   * per-query packet decode / reverse-complement / result write-back add
//     a small per-query II overhead, and each batch pays one pipeline
//     fill/drain.
//
// Non-mapping reads exit the pipeline early (the paper's explanation of the
// Fig. 7 mapping-ratio dependence), which this model reproduces because it
// counts *executed* steps.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fmindex/fm_index.hpp"
#include "fmindex/occ_backends.hpp"
#include "fpga/bram.hpp"
#include "fpga/device_spec.hpp"
#include "fpga/query_packet.hpp"

namespace bwaver {

struct KernelStats {
  std::uint64_t compute_cycles = 0;
  std::uint64_t queries = 0;
  std::uint64_t steps_executed = 0;  ///< slower-strand steps, summed
  std::uint64_t rank_queries = 0;    ///< binary rank operations issued
  std::uint64_t early_exits = 0;     ///< strand searches that emptied early

  KernelStats& operator+=(const KernelStats& other) noexcept {
    compute_cycles += other.compute_cycles;
    queries += other.queries;
    steps_executed += other.steps_executed;
    rank_queries += other.rank_queries;
    early_exits += other.early_exits;
    return *this;
  }
};

class HlsMapperKernel {
 public:
  /// "Programs" the kernel: allocates the structure (wavelet-tree nodes,
  /// shared tables, C array) in modeled on-chip memory. Throws
  /// DeviceCapacityError when the reference does not fit — the paper's
  /// ~100 Mbp limit surfaces here.
  HlsMapperKernel(const DeviceSpec& spec, const FmIndex<RrrWaveletOcc>& index);

  /// Bytes of device-resident data (succinct structure + shared tables).
  std::size_t structure_bytes() const noexcept { return structure_bytes_; }

  /// Cycles to stream the structure into BRAM through one 512-bit port.
  std::uint64_t structure_load_cycles() const noexcept;

  /// Steady-state initiation interval of one backward-search step.
  unsigned step_initiation_interval() const noexcept { return step_ii_; }

  /// Latency of one rank chain (used for the batch pipeline fill).
  unsigned step_latency() const noexcept { return step_latency_; }

  /// Executes a batch; appends one QueryResult per packet (in order) and
  /// returns the batch's cycle accounting.
  KernelStats run_batch(std::span<const QueryPacket> batch,
                        std::vector<QueryResult>& results) const;

  const BramAllocator& bram() const noexcept { return bram_; }
  const DeviceSpec& spec() const noexcept { return spec_; }

 private:
  DeviceSpec spec_;
  const FmIndex<RrrWaveletOcc>* index_;
  BramAllocator bram_;
  std::size_t structure_bytes_ = 0;
  unsigned step_ii_ = 1;
  unsigned step_latency_ = 1;
};

}  // namespace bwaver
