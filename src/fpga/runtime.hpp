// OpenCL-style host runtime model.
//
// The paper benchmarks through "OpenCL events that provide an easy to use
// API to profile the code that runs on the FPGA device". This runtime
// reproduces that interface shape: a command queue with enqueue_write /
// enqueue_kernel / enqueue_read returning events carrying
// queued/submitted/start/end timestamps on a modeled device timeline
// (nanoseconds since runtime creation). Data moves functionally through the
// calls; durations come from the DeviceSpec link/clock model:
//
//   * buffer writes/reads — PCIe transfer at the modeled link bandwidth;
//   * kernel runs         — HlsMapperKernel cycle counts at the kernel clock;
//   * program()           — structure PCIe transfer + on-chip load.
//
// Commands execute in-order (a single in-order command queue, as in the
// paper's host code).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fpga/hls_kernel.hpp"

namespace bwaver {

enum class CommandType { kProgram, kWriteBuffer, kReadBuffer, kKernel };

/// Profiling record, mirroring clGetEventProfilingInfo's four timestamps.
struct Event {
  CommandType type{};
  std::uint64_t queued_ns = 0;
  std::uint64_t submitted_ns = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;

  std::uint64_t duration_ns() const noexcept { return end_ns - start_ns; }
};

using EventPtr = std::shared_ptr<const Event>;

class FpgaRuntime {
 public:
  explicit FpgaRuntime(DeviceSpec spec = DeviceSpec{}) : spec_(spec) {}

  /// Loads the succinct structure onto the device (bitstream + data load in
  /// the real flow). Must be called before enqueue_kernel.
  EventPtr program(const FmIndex<RrrWaveletOcc>& index);

  /// Host-to-device transfer of `bytes` (e.g. a batch of query packets).
  EventPtr enqueue_write(std::size_t bytes);

  /// Kernel execution over a batch; results are appended to `results`.
  EventPtr enqueue_kernel(std::span<const QueryPacket> batch,
                          std::vector<QueryResult>& results);

  /// Device-to-host transfer of `bytes` (e.g. the result records).
  EventPtr enqueue_read(std::size_t bytes);

  /// Blocks until all enqueued commands completed. (The model executes
  /// eagerly, so this only exists for interface fidelity.)
  void finish() const noexcept {}

  bool programmed() const noexcept { return kernel_ != nullptr; }
  const HlsMapperKernel& kernel() const { return *kernel_; }
  const DeviceSpec& spec() const noexcept { return spec_; }

  /// Current end of the modeled device timeline.
  std::uint64_t device_time_ns() const noexcept { return timeline_ns_; }

  /// Cumulative kernel statistics across all enqueued batches.
  const KernelStats& total_kernel_stats() const noexcept { return kernel_stats_; }

  /// Events issued so far, in completion order.
  const std::vector<EventPtr>& events() const noexcept { return events_; }

 private:
  EventPtr record(CommandType type, std::uint64_t duration_ns);
  std::uint64_t transfer_ns(std::size_t bytes) const noexcept;

  DeviceSpec spec_;
  std::unique_ptr<HlsMapperKernel> kernel_;
  std::uint64_t timeline_ns_ = 0;
  KernelStats kernel_stats_;
  std::vector<EventPtr> events_;
};

}  // namespace bwaver
