// Unified metrics registry — the process-wide successor to the ad-hoc
// counters that used to live in jobs/server_stats.*.
//
// Three metric kinds, all wait-free to record:
//   Counter   — monotonically increasing uint64 (relaxed atomic add);
//   Gauge     — settable double (atomic store, CAS add);
//   Histogram — fixed cumulative buckets + count + sum, Prometheus-shaped.
//
// A MetricsRegistry owns families keyed by metric name; a family owns one
// child metric per label set. Registration (get-or-create) takes a mutex —
// callers cache the returned reference and record lock-free afterwards.
// Returned references stay valid for the registry's lifetime.
//
// render_prometheus() emits the text exposition format (HELP/TYPE lines,
// escaped label values, `_bucket`/`_sum`/`_count` histogram series) served
// by GET /metrics; the grammar is pinned by tests/obs_metrics_test.cpp and
// tools/validate_prometheus.py.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace bwaver::obs {

/// Label key/value pairs. Order does not matter for identity (label sets
/// are canonicalized by sorting on key), but rendering preserves the
/// canonical order.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  /// Compatibility alias for call sites (and tests) written against the
  /// former std::atomic counters.
  std::uint64_t load() const noexcept { return value(); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-boundary cumulative histogram. Observations are doubles in the
/// family's unit (seconds for all time histograms in this tree, per
/// Prometheus convention); `bounds` are the finite upper bounds, with an
/// implicit +Inf bucket appended.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value) noexcept;
  void observe_ms(double ms) noexcept { observe(ms / 1000.0); }

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double sum_ms() const noexcept { return sum() * 1000.0; }
  double mean_ms() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum_ms() / static_cast<double>(n);
  }

  /// Finite bounds only (the +Inf bucket is implicit).
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Cumulative count of observations <= bounds()[i]; i == bounds().size()
  /// is the +Inf bucket (== count()).
  std::uint64_t cumulative_count(std::size_t i) const noexcept;

  /// The 1 ms .. 100 s decade-with-mid-step ladder (in seconds) shared by
  /// every latency histogram in the tree.
  static std::vector<double> default_time_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* to_string(MetricKind kind);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. Throws std::invalid_argument on an invalid metric/label
  /// name and std::logic_error when `name` is already registered as a
  /// different kind (or, for histograms, with different bounds).
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds, const Labels& labels = {});

  /// Snapshot of every child of a counter family, in canonical label order.
  /// Empty when the family does not exist.
  std::vector<std::pair<Labels, std::uint64_t>> counter_values(
      const std::string& name) const;

  /// Prometheus text exposition of every family, families in name order.
  std::string render_prometheus() const;

  /// True when `name` is a valid Prometheus metric name
  /// ([a-zA-Z_:][a-zA-Z0-9_:]*).
  static bool valid_metric_name(const std::string& name);
  /// True when `name` is a valid label name ([a-zA-Z_][a-zA-Z0-9_]*).
  static bool valid_label_name(const std::string& name);
  /// Escapes `\`, `"`, and newline for a label value position.
  static std::string escape_label_value(const std::string& value);

 private:
  struct Child {
    Labels labels;  ///< canonical (key-sorted) order
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::vector<double> bounds;              ///< histograms only
    std::map<std::string, Child> children;   ///< keyed by serialized labels
  };

  Child& child_for(const std::string& name, const std::string& help, MetricKind kind,
                   const Labels& labels, const std::vector<double>* bounds);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

/// Process-wide registry used by ambient instrumentation (CLI runs, stage
/// histograms when no per-service registry is attached).
MetricsRegistry& default_registry();

}  // namespace bwaver::obs
