#include "obs/trace.hpp"

#include <cstdio>
#include <functional>
#include <thread>
#include <utility>

namespace bwaver::obs {

namespace {

using Clock = std::chrono::steady_clock;

thread_local ObsContext g_context;

std::string format_ms(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  return buffer;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

Trace::Trace(std::string id, std::size_t max_spans)
    : id_(std::move(id)), max_spans_(max_spans == 0 ? 1 : max_spans),
      epoch_(Clock::now()) {}

std::uint32_t Trace::thread_ordinal_locked() {
  const std::uint64_t hashed = std::hash<std::thread::id>{}(std::this_thread::get_id());
  for (std::size_t i = 0; i < thread_ids_.size(); ++i) {
    if (thread_ids_[i] == hashed) return static_cast<std::uint32_t>(i);
  }
  thread_ids_.push_back(hashed);
  return static_cast<std::uint32_t>(thread_ids_.size() - 1);
}

std::uint32_t Trace::begin(std::string_view name, std::uint32_t parent) {
  const double start_ms = elapsed_ms();
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return 0;
  }
  SpanRecord record;
  record.id = static_cast<std::uint32_t>(spans_.size() + 1);
  record.parent = parent;
  record.name.assign(name);
  record.start_ms = start_ms;
  record.tid = thread_ordinal_locked();
  spans_.push_back(std::move(record));
  return spans_.back().id;
}

void Trace::end(std::uint32_t span) {
  if (span == 0) return;
  const double now_ms = elapsed_ms();
  std::lock_guard<std::mutex> lock(mutex_);
  if (span > spans_.size()) return;
  SpanRecord& record = spans_[span - 1];
  if (record.dur_ms < 0.0) record.dur_ms = now_ms - record.start_ms;
}

std::uint32_t Trace::emit(std::string_view name, std::uint32_t parent, double start_ms,
                          double dur_ms) {
  if (dur_ms < 0.0) dur_ms = 0.0;
  if (start_ms < 0.0) start_ms = elapsed_ms() - dur_ms;
  if (start_ms < 0.0) start_ms = 0.0;
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return 0;
  }
  SpanRecord record;
  record.id = static_cast<std::uint32_t>(spans_.size() + 1);
  record.parent = parent;
  record.name.assign(name);
  record.start_ms = start_ms;
  record.dur_ms = dur_ms;
  record.tid = thread_ordinal_locked();
  spans_.push_back(std::move(record));
  return spans_.back().id;
}

double Trace::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(Clock::now() - epoch_).count();
}

std::size_t Trace::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::uint64_t Trace::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<SpanRecord> Trace::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::string Trace::to_json() const {
  const auto snapshot = spans();
  // Total: the end of the last-finishing root span (open spans count as
  // still running up to the trace's current elapsed time).
  double total_ms = 0.0;
  for (const auto& span : snapshot) {
    const double end = span.start_ms + (span.dur_ms < 0.0 ? 0.0 : span.dur_ms);
    if (end > total_ms) total_ms = end;
  }
  std::string json = "{\"trace_id\":\"" + json_escape(id_) + "\"";
  json += ",\"total_ms\":" + format_ms(total_ms);
  json += ",\"dropped_spans\":" + std::to_string(dropped());
  json += ",\"spans\":[";
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const SpanRecord& span = snapshot[i];
    if (i > 0) json += ",";
    json += "{\"id\":" + std::to_string(span.id);
    json += ",\"parent\":" + std::to_string(span.parent);
    json += ",\"name\":\"" + json_escape(span.name) + "\"";
    json += ",\"start_ms\":" + format_ms(span.start_ms);
    json += ",\"dur_ms\":" + format_ms(span.dur_ms < 0.0 ? 0.0 : span.dur_ms);
    json += ",\"tid\":" + std::to_string(span.tid);
    json += "}";
  }
  json += "]}";
  return json;
}

std::string Trace::chrome_json() const {
  const auto snapshot = spans();
  std::string json = "[";
  bool first = true;
  for (const auto& span : snapshot) {
    if (!first) json += ",";
    first = false;
    json += "{\"name\":\"" + json_escape(span.name) + "\"";
    json += ",\"cat\":\"bwaver\",\"ph\":\"X\",\"pid\":1";
    json += ",\"tid\":" + std::to_string(span.tid);
    json += ",\"ts\":" + format_ms(span.start_ms * 1000.0);
    json += ",\"dur\":" + format_ms((span.dur_ms < 0.0 ? 0.0 : span.dur_ms) * 1000.0);
    json += ",\"args\":{\"trace_id\":\"" + json_escape(id_) + "\"";
    json += ",\"span\":" + std::to_string(span.id);
    json += ",\"parent\":" + std::to_string(span.parent) + "}}";
  }
  json += "]";
  return json;
}

const ObsContext& current_context() { return g_context; }

ScopedObsContext::ScopedObsContext(ObsContext context) : saved_(g_context) {
  g_context = context;
}

ScopedObsContext::~ScopedObsContext() { g_context = saved_; }

TraceSpan::TraceSpan(std::string_view name) {
  if (g_context.trace == nullptr) return;
  trace_ = g_context.trace;
  saved_parent_ = g_context.parent_span;
  id_ = trace_->begin(name, saved_parent_);
  if (id_ != 0) g_context.parent_span = id_;
}

TraceSpan::~TraceSpan() {
  if (trace_ == nullptr) return;
  if (id_ != 0) {
    g_context.parent_span = saved_parent_;
    trace_->end(id_);
  }
}

TraceCollector::TraceCollector(TraceConfig config) : config_(config) {
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
}

std::shared_ptr<Trace> TraceCollector::start_trace(std::string id) {
  if (!config_.enabled) return nullptr;
  return std::make_shared<Trace>(std::move(id), config_.max_spans_per_trace);
}

void TraceCollector::finish(const std::shared_ptr<Trace>& trace) {
  if (trace == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ++completed_;
  double total_ms = 0.0;
  for (const auto& span : trace->spans()) {
    const double end = span.start_ms + (span.dur_ms < 0.0 ? 0.0 : span.dur_ms);
    if (end > total_ms) total_ms = end;
  }
  if (total_ms < config_.slow_threshold_ms) return;
  ring_.push_back(trace);
  while (ring_.size() > config_.ring_capacity) ring_.pop_front();
}

std::vector<std::shared_ptr<const Trace>> TraceCollector::recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.rbegin(), ring_.rend()};
}

std::string TraceCollector::recent_json() const {
  const auto traces = recent();
  std::string json = "[";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (i > 0) json += ",";
    json += traces[i]->to_json();
  }
  json += "]";
  return json;
}

std::uint64_t TraceCollector::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

std::uint64_t TraceCollector::retained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

}  // namespace bwaver::obs
