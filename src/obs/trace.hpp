// Hierarchical trace spans with a per-request trace context.
//
// A Trace is one request's (or one CLI batch run's) tree of timed spans:
// the job layer opens the root and queue-wait spans, map_records_over adds
// the per-stage spans (seed / search / locate / sam), shard workers nest
// theirs under the stage that dispatched them, and the FPGA / staged
// mappers append modeled-time phase spans. Span recording takes a mutex —
// spans are coarse (a handful per request), so contention is nil.
//
// Propagation is ambient: ScopedObsContext installs {trace, parent span,
// metrics registry} in a thread-local slot, TraceSpan reads it. When no
// context is installed (tracing off, or sampling skipped the request)
// TraceSpan construction is a thread-local load and a null check — the
// "compiled to a no-op RAII" cheapness the serving benches guard (<2%
// overhead, bench_job_throughput trace_overhead_pct).
//
// Completed traces land in a TraceCollector: a bounded ring of the most
// recent requests at/above a slowness threshold, exported as summary JSON
// (GET /trace/recent) or Chrome trace_event JSON (chrome://tracing,
// Perfetto) for the slow-request post-mortems the paper does with OpenCL
// event profiling.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace bwaver::obs {

class MetricsRegistry;

struct SpanRecord {
  std::uint32_t id = 0;      ///< 1-based; 0 means "no span"
  std::uint32_t parent = 0;  ///< 0 for roots
  std::string name;
  double start_ms = 0.0;  ///< relative to the trace epoch
  double dur_ms = -1.0;   ///< -1 while the span is open
  std::uint32_t tid = 0;  ///< small per-trace thread ordinal
};

class Trace {
 public:
  static constexpr std::size_t kDefaultMaxSpans = 512;

  explicit Trace(std::string id, std::size_t max_spans = kDefaultMaxSpans);

  const std::string& id() const noexcept { return id_; }

  /// Opens a span; returns its id (0 when the span cap was hit — every
  /// later call on that id is a no-op, `dropped()` counts the loss).
  std::uint32_t begin(std::string_view name, std::uint32_t parent = 0);
  void end(std::uint32_t span);

  /// Appends an already-timed span (modeled FPGA phases, queue waits whose
  /// endpoints were captured elsewhere). `start_ms` is relative to the
  /// trace epoch; negative start means "ends now, lasted dur_ms". Returns
  /// the span id (0 when dropped at the cap).
  std::uint32_t emit(std::string_view name, std::uint32_t parent, double start_ms,
                     double dur_ms);

  /// Milliseconds since the trace epoch.
  double elapsed_ms() const;

  /// Span count and spans dropped over max_spans.
  std::size_t size() const;
  std::uint64_t dropped() const;

  std::vector<SpanRecord> spans() const;

  /// One JSON object: {"trace_id":...,"total_ms":...,"spans":[...]}.
  std::string to_json() const;

  /// Chrome trace_event array ("X" complete events, microsecond
  /// timestamps), loadable in chrome://tracing and Perfetto.
  std::string chrome_json() const;

 private:
  std::uint32_t thread_ordinal_locked();

  std::string id_;
  std::size_t max_spans_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::vector<std::uint64_t> thread_ids_;  ///< hashed std::thread::id -> ordinal
  std::uint64_t dropped_ = 0;
};

/// The ambient observability context: which trace (and parent span) spans
/// attach to, and which registry ambient stage metrics record into.
struct ObsContext {
  Trace* trace = nullptr;
  std::uint32_t parent_span = 0;
  MetricsRegistry* metrics = nullptr;
};

/// The calling thread's current context (all-null when none installed).
const ObsContext& current_context();

/// Installs `context` for the current thread, restoring the previous one on
/// destruction. Used at request/job boundaries and when a worker thread
/// picks up a shard on behalf of a traced request.
class ScopedObsContext {
 public:
  explicit ScopedObsContext(ObsContext context);
  ~ScopedObsContext();
  ScopedObsContext(const ScopedObsContext&) = delete;
  ScopedObsContext& operator=(const ScopedObsContext&) = delete;

 private:
  ObsContext saved_;
};

/// RAII span against the ambient context; a no-op when no trace is
/// installed. While alive, nested TraceSpans on the same thread parent to
/// it.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// The underlying span id (0 when tracing is off).
  std::uint32_t id() const noexcept { return id_; }

 private:
  Trace* trace_ = nullptr;
  std::uint32_t id_ = 0;
  std::uint32_t saved_parent_ = 0;
};

struct TraceConfig {
  bool enabled = true;
  /// Completed traces shorter than this never enter the ring (0 keeps all).
  double slow_threshold_ms = 0.0;
  /// Ring capacity: most recent qualifying traces retained.
  std::size_t ring_capacity = 64;
  std::size_t max_spans_per_trace = Trace::kDefaultMaxSpans;
};

/// Bounded ring of recently completed traces. start_trace() returns null
/// when tracing is disabled — callers treat a null trace as "don't
/// instrument".
class TraceCollector {
 public:
  explicit TraceCollector(TraceConfig config = TraceConfig{});

  std::shared_ptr<Trace> start_trace(std::string id);

  /// Files a completed trace into the ring (dropping the oldest beyond
  /// capacity) unless it is faster than the slow threshold.
  void finish(const std::shared_ptr<Trace>& trace);

  std::vector<std::shared_ptr<const Trace>> recent() const;

  /// JSON array of Trace::to_json() objects, most recent first.
  std::string recent_json() const;

  const TraceConfig& config() const noexcept { return config_; }
  std::uint64_t completed() const;
  std::uint64_t retained() const;

 private:
  TraceConfig config_;
  mutable std::mutex mutex_;
  std::deque<std::shared_ptr<const Trace>> ring_;
  std::uint64_t completed_ = 0;
};

}  // namespace bwaver::obs
