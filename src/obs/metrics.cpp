#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace bwaver::obs {

namespace {

/// Shortest round-trip-ish representation: integers render bare, everything
/// else through %g (enough precision for bucket bounds and sums).
std::string format_double(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) && v < 1e15 && v > -1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  return buffer;
}

Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return labels;
}

/// Serialized canonical label set — the child key ("" for the unlabeled
/// child) and, non-empty, the rendered {...} selector.
std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + MetricsRegistry::escape_label_value(value) + "\"";
  }
  out += "}";
  return out;
}

/// As render_labels but with one extra label appended (histogram `le`).
std::string render_labels_with(const Labels& labels, const std::string& key,
                               const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return render_labels(extended);
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bucket bounds must be sorted");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) noexcept {
  if (!(value >= 0.0)) value = 0.0;  // NaN and negatives clamp to the first bucket
  std::size_t bucket = bounds_.size();
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::cumulative_count(std::size_t i) const noexcept {
  std::uint64_t cumulative = 0;
  const std::size_t upto = std::min(i, bounds_.size());
  for (std::size_t b = 0; b <= upto; ++b) {
    cumulative += buckets_[b].load(std::memory_order_relaxed);
  }
  return cumulative;
}

std::vector<double> Histogram::default_time_bounds() {
  return {0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0};
}

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

bool MetricsRegistry::valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  if (!head(name[0])) return false;
  for (const char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool MetricsRegistry::valid_label_name(const std::string& name) {
  return valid_metric_name(name) && name.find(':') == std::string::npos;
}

std::string MetricsRegistry::escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

MetricsRegistry::Child& MetricsRegistry::child_for(const std::string& name,
                                                   const std::string& help,
                                                   MetricKind kind, const Labels& labels,
                                                   const std::vector<double>* bounds) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("MetricsRegistry: invalid metric name '" + name + "'");
  }
  for (const auto& [key, value] : labels) {
    (void)value;
    if (!valid_label_name(key)) {
      throw std::invalid_argument("MetricsRegistry: invalid label name '" + key + "'");
    }
  }
  const Labels sorted = canonical(labels);
  const std::string child_key = render_labels(sorted);

  std::lock_guard<std::mutex> lock(mutex_);
  auto [family_it, inserted] = families_.try_emplace(name);
  Family& family = family_it->second;
  if (inserted) {
    family.help = help;
    family.kind = kind;
    if (bounds != nullptr) family.bounds = *bounds;
  } else {
    if (family.kind != kind) {
      throw std::logic_error("MetricsRegistry: '" + name + "' already registered as " +
                             std::string(to_string(family.kind)));
    }
    if (bounds != nullptr && family.bounds != *bounds) {
      throw std::logic_error("MetricsRegistry: '" + name +
                             "' re-registered with different bucket bounds");
    }
  }
  auto [child_it, child_inserted] = family.children.try_emplace(child_key);
  Child& child = child_it->second;
  if (child_inserted) {
    child.labels = sorted;
    switch (kind) {
      case MetricKind::kCounter: child.counter = std::make_unique<Counter>(); break;
      case MetricKind::kGauge: child.gauge = std::make_unique<Gauge>(); break;
      case MetricKind::kHistogram:
        child.histogram = std::make_unique<Histogram>(family.bounds);
        break;
    }
  }
  return child;
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help,
                                  const Labels& labels) {
  return *child_for(name, help, MetricKind::kCounter, labels, nullptr).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  return *child_for(name, help, MetricKind::kGauge, labels, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::string& help,
                                      std::vector<double> bounds, const Labels& labels) {
  return *child_for(name, help, MetricKind::kHistogram, labels, &bounds).histogram;
}

std::vector<std::pair<Labels, std::uint64_t>> MetricsRegistry::counter_values(
    const std::string& name) const {
  std::vector<std::pair<Labels, std::uint64_t>> values;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = families_.find(name);
  if (it == families_.end() || it->second.kind != MetricKind::kCounter) return values;
  for (const auto& [key, child] : it->second.children) {
    (void)key;
    values.emplace_back(child.labels, child.counter->value());
  }
  return values;
}

std::string MetricsRegistry::render_prometheus() const {
  std::string out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " ";
    // HELP text escapes backslash and newline (but not quotes).
    for (const char c : family.help) {
      if (c == '\\') {
        out += "\\\\";
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    out += "\n# TYPE " + name + " " + to_string(family.kind) + "\n";
    for (const auto& [key, child] : family.children) {
      (void)key;
      const std::string selector = render_labels(child.labels);
      switch (family.kind) {
        case MetricKind::kCounter:
          out += name + selector + " " + std::to_string(child.counter->value()) + "\n";
          break;
        case MetricKind::kGauge:
          out += name + selector + " " + format_double(child.gauge->value()) + "\n";
          break;
        case MetricKind::kHistogram: {
          const Histogram& h = *child.histogram;
          // One pass over the bucket atomics so the emitted series are
          // internally consistent even while recorders race the scrape:
          // cumulative counts are non-decreasing and `+Inf` == `_count` by
          // construction.
          for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            out += name + "_bucket" +
                   render_labels_with(child.labels, "le", format_double(h.bounds()[i])) +
                   " " + std::to_string(h.cumulative_count(i)) + "\n";
          }
          const std::uint64_t total = h.cumulative_count(h.bounds().size());
          out += name + "_bucket" + render_labels_with(child.labels, "le", "+Inf") + " " +
                 std::to_string(total) + "\n";
          out += name + "_sum" + selector + " " + format_double(h.sum()) + "\n";
          out += name + "_count" + selector + " " + std::to_string(total) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

MetricsRegistry& default_registry() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace bwaver::obs
