#include "io/fastq.hpp"

#include "io/gzip.hpp"

namespace bwaver {

namespace {
std::vector<std::uint8_t> maybe_decompress(std::span<const std::uint8_t> data) {
  if (looks_like_gzip(data)) return gzip_decompress(data);
  return {data.begin(), data.end()};
}

class LineScanner {
 public:
  explicit LineScanner(std::string_view text) : text_(text) {}

  /// Next line without the terminator; false at end of input.
  bool next(std::string_view& line) {
    if (pos_ >= text_.size()) return false;
    std::size_t eol = text_.find('\n', pos_);
    if (eol == std::string_view::npos) eol = text_.size();
    line = text_.substr(pos_, eol - pos_);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos_ = eol + 1;
    return true;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};
}  // namespace

std::vector<FastqRecord> parse_fastq(std::span<const std::uint8_t> raw) {
  const auto bytes = maybe_decompress(raw);
  const std::string_view text(reinterpret_cast<const char*>(bytes.data()), bytes.size());

  std::vector<FastqRecord> records;
  LineScanner scanner(text);
  std::string_view line;
  std::size_t record_index = 0;
  while (scanner.next(line)) {
    if (line.empty()) continue;  // tolerate blank separator lines
    if (line.front() != '@') {
      throw IoError("parse_fastq: record " + std::to_string(record_index) +
                    ": expected '@' header, got '" + std::string(line.substr(0, 20)) + "'");
    }
    FastqRecord record;
    record.name = std::string(line.substr(1));

    if (!scanner.next(line)) throw IoError("parse_fastq: truncated record (no sequence)");
    record.sequence = std::string(line);

    if (!scanner.next(line) || line.empty() || line.front() != '+') {
      throw IoError("parse_fastq: record " + std::to_string(record_index) +
                    ": missing '+' separator");
    }
    if (!scanner.next(line)) throw IoError("parse_fastq: truncated record (no quality)");
    record.quality = std::string(line);

    if (record.quality.size() != record.sequence.size()) {
      throw IoError("parse_fastq: record " + std::to_string(record_index) +
                    ": quality length " + std::to_string(record.quality.size()) +
                    " != sequence length " + std::to_string(record.sequence.size()));
    }
    records.push_back(std::move(record));
    ++record_index;
  }
  return records;
}

std::vector<FastqRecord> read_fastq(const std::string& path) {
  const auto data = read_file(path);
  return parse_fastq(data);
}

std::string format_fastq(std::span<const FastqRecord> records) {
  std::string out;
  for (const auto& record : records) {
    out += '@';
    out += record.name;
    out += '\n';
    out += record.sequence;
    out += "\n+\n";
    out += record.quality;
    out += '\n';
  }
  return out;
}

void write_fastq(const std::string& path, std::span<const FastqRecord> records,
                 bool gzipped) {
  const std::string text = format_fastq(records);
  if (gzipped) {
    const auto compressed = gzip_compress(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
    write_file(path, compressed);
  } else {
    write_file(path, text);
  }
}

}  // namespace bwaver
