#include "io/byte_io.hpp"

#include <cstring>
#include <fstream>

namespace bwaver {

void ByteWriter::u16(std::uint16_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void ByteWriter::vec_u8(std::span<const std::uint8_t> data) {
  u64(data.size());
  bytes(data);
}

void ByteWriter::vec_u32(std::span<const std::uint32_t> data) {
  u64(data.size());
  for (std::uint32_t v : data) u32(v);
}

void ByteWriter::str(const std::string& s) {
  u64(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

void ByteReader::bytes(std::span<std::uint8_t> out) {
  need(out.size());
  std::memcpy(out.data(), data_.data() + pos_, out.size());
  pos_ += out.size();
}

std::vector<std::uint8_t> ByteReader::vec_u8() {
  const std::uint64_t count = u64();
  need(count);
  std::vector<std::uint8_t> out(data_.begin() + pos_, data_.begin() + pos_ + count);
  pos_ += count;
  return out;
}

std::vector<std::uint32_t> ByteReader::vec_u32() {
  const std::uint64_t count = u64();
  need(count * 4);
  std::vector<std::uint32_t> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(u32());
  return out;
}

std::string ByteReader::str() {
  const std::uint64_t count = u64();
  need(count);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), count);
  pos_ += count;
  return out;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("read_file: cannot open " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  if (size > 0 && !in.read(reinterpret_cast<char*>(data.data()), size)) {
    throw IoError("read_file: short read from " + path);
  }
  return data;
}

void write_file(const std::string& path, std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("write_file: cannot open " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw IoError("write_file: short write to " + path);
}

void write_file(const std::string& path, const std::string& data) {
  write_file(path, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

}  // namespace bwaver
