#include "io/byte_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace bwaver {

void ByteWriter::u16(std::uint16_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void ByteWriter::vec_u8(std::span<const std::uint8_t> data) {
  u64(data.size());
  bytes(data);
}

void ByteWriter::vec_u32(std::span<const std::uint32_t> data) {
  u64(data.size());
  for (std::uint32_t v : data) u32(v);
}

void ByteWriter::str(const std::string& s) {
  u64(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void ByteWriter::raw_u32(std::span<const std::uint32_t> data) {
  const std::size_t old = buffer_.size();
  buffer_.resize(old + data.size_bytes());
  std::memcpy(buffer_.data() + old, data.data(), data.size_bytes());
}

void ByteWriter::raw_u64(std::span<const std::uint64_t> data) {
  const std::size_t old = buffer_.size();
  buffer_.resize(old + data.size_bytes());
  std::memcpy(buffer_.data() + old, data.data(), data.size_bytes());
}

void ByteWriter::pad_to(std::size_t alignment) {
  if (alignment == 0) return;
  const std::size_t rem = buffer_.size() % alignment;
  if (rem != 0) buffer_.resize(buffer_.size() + (alignment - rem), 0);
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

void ByteReader::bytes(std::span<std::uint8_t> out) {
  need(out.size());
  std::memcpy(out.data(), data_.data() + pos_, out.size());
  pos_ += out.size();
}

std::vector<std::uint8_t> ByteReader::vec_u8() {
  const std::uint64_t count = u64();
  need(count);
  std::vector<std::uint8_t> out(data_.begin() + pos_, data_.begin() + pos_ + count);
  pos_ += count;
  return out;
}

std::vector<std::uint32_t> ByteReader::vec_u32() {
  const std::uint64_t count = u64();
  if (count > remaining() / 4) fail_truncated();
  std::vector<std::uint32_t> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(u32());
  return out;
}

std::string ByteReader::str() {
  const std::uint64_t count = u64();
  need(count);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), count);
  pos_ += count;
  return out;
}

std::span<const std::uint8_t> ByteReader::span_u8(std::size_t count) {
  need(count);
  const std::span<const std::uint8_t> out = data_.subspan(pos_, count);
  pos_ += count;
  return out;
}

std::span<const std::uint32_t> ByteReader::span_u32(std::size_t count) {
  if (count > remaining() / sizeof(std::uint32_t)) fail_truncated();
  const auto* base = data_.data() + pos_;
  if (reinterpret_cast<std::uintptr_t>(base) % alignof(std::uint32_t) != 0) {
    fail_misaligned(sizeof(std::uint32_t));
  }
  pos_ += count * sizeof(std::uint32_t);
  return {reinterpret_cast<const std::uint32_t*>(base), count};
}

std::span<const std::uint64_t> ByteReader::span_u64(std::size_t count) {
  if (count > remaining() / sizeof(std::uint64_t)) fail_truncated();
  const auto* base = data_.data() + pos_;
  if (reinterpret_cast<std::uintptr_t>(base) % alignof(std::uint64_t) != 0) {
    fail_misaligned(sizeof(std::uint64_t));
  }
  pos_ += count * sizeof(std::uint64_t);
  return {reinterpret_cast<const std::uint64_t*>(base), count};
}

void ByteReader::align_to(std::size_t alignment) {
  if (alignment == 0) return;
  const std::size_t rem = pos_ % alignment;
  if (rem != 0) {
    need(alignment - rem);
    pos_ += alignment - rem;
  }
}

void ByteReader::fail_truncated() const {
  if (context_.empty()) throw IoError("ByteReader: truncated input");
  throw IoError("ByteReader: truncated input in section '" + context_ +
                "' at file offset " + std::to_string(base_offset_ + pos_));
}

void ByteReader::fail_misaligned(std::size_t element_size) const {
  std::string where =
      context_.empty() ? std::string() : " in section '" + context_ + "'";
  throw IoError("ByteReader: misaligned " +
                std::to_string(element_size * 8) + "-bit array" + where +
                " at file offset " + std::to_string(base_offset_ + pos_));
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("read_file: cannot open " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  if (size > 0 && !in.read(reinterpret_cast<char*>(data.data()), size)) {
    throw IoError("read_file: short read from " + path);
  }
  return data;
}

void write_file(const std::string& path, std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("write_file: cannot open " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw IoError("write_file: short write to " + path);
}

void write_file(const std::string& path, const std::string& data) {
  write_file(path, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

void write_file_atomic(const std::string& path, std::span<const std::uint8_t> data) {
  const std::string temp = path + ".tmp";
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw IoError("write_file_atomic: cannot open " + temp + ": " + std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(temp.c_str());
      throw IoError("write_file_atomic: short write to " + temp + ": " + std::strerror(err));
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync before rename: the rename must not become durable before the data,
  // or a power cut could surface a complete-looking but empty file.
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(temp.c_str());
    throw IoError("write_file_atomic: fsync failed for " + temp + ": " + std::strerror(errno));
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(temp.c_str());
    throw IoError("write_file_atomic: rename to " + path + " failed: " + std::strerror(err));
  }
}

}  // namespace bwaver
