// Little-endian binary (de)serialization helpers and whole-file I/O, used by
// the pipeline to persist step-1 outputs (BWT + SA) and by the index
// save/load paths.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace bwaver {

/// Raised on malformed or truncated inputs across the io module.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends scalars/vectors to a growing byte buffer (always little-endian).
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const std::uint8_t> data);

  /// Length-prefixed (u64) byte vector.
  void vec_u8(std::span<const std::uint8_t> data);
  /// Length-prefixed (u64) u32 vector.
  void vec_u32(std::span<const std::uint32_t> data);
  /// Length-prefixed (u64) string.
  void str(const std::string& s);

  /// Raw element bytes with no length prefix (archive v3 flat payloads;
  /// the element count is written separately by the caller). Host must be
  /// little-endian — the v3 writer enforces that once up front.
  void raw_u8(std::span<const std::uint8_t> data) { bytes(data); }
  void raw_u32(std::span<const std::uint32_t> data);
  void raw_u64(std::span<const std::uint64_t> data);

  /// Appends zero bytes until the buffer size is a multiple of `alignment`.
  void pad_to(std::size_t alignment);

  std::size_t size() const noexcept { return buffer_.size(); }

  const std::vector<std::uint8_t>& data() const noexcept { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Reads scalars/vectors back; throws IoError on truncation. When `context`
/// and `base_offset` are supplied (archive section readers), errors name the
/// section and the absolute file offset of the failure.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data,
                      std::string context = {}, std::uint64_t base_offset = 0)
      : data_(data), context_(std::move(context)), base_offset_(base_offset) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  void bytes(std::span<std::uint8_t> out);

  std::vector<std::uint8_t> vec_u8();
  std::vector<std::uint32_t> vec_u32();
  std::string str();

  /// Zero-copy views over the underlying buffer (archive v3 flat payloads).
  /// The span aliases the reader's buffer: it is valid only as long as the
  /// backing bytes are. The u32/u64 variants require the current position to
  /// be naturally aligned relative to the buffer start — guaranteed by the
  /// v3 layout (align_to(64) before every array) whenever the buffer itself
  /// is at least 8-byte aligned (mmap pages / read_file vectors are).
  std::span<const std::uint8_t> span_u8(std::size_t count);
  std::span<const std::uint32_t> span_u32(std::size_t count);
  std::span<const std::uint64_t> span_u64(std::size_t count);

  /// Skips forward to the next multiple of `alignment` (pad bytes written by
  /// ByteWriter::pad_to); throws IoError when that runs past the end.
  void align_to(std::size_t alignment);

  std::size_t offset() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return pos_ == data_.size(); }

 private:
  void need(std::size_t count) const {
    if (count > data_.size() - pos_) fail_truncated();
  }
  [[noreturn]] void fail_truncated() const;
  [[noreturn]] void fail_misaligned(std::size_t element_size) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::string context_;
  std::uint64_t base_offset_ = 0;
};

/// Whole-file helpers; throw IoError on failure.
std::vector<std::uint8_t> read_file(const std::string& path);
void write_file(const std::string& path, std::span<const std::uint8_t> data);
void write_file(const std::string& path, const std::string& data);

/// Crash-safe whole-file write: the data goes to `path + ".tmp"`, is fsynced,
/// and is renamed over `path` in one atomic step. A reader racing the write —
/// or opening the file after a mid-write crash — sees either the complete old
/// content or the complete new content, never a torn mix. The stale ".tmp"
/// a crash can leave behind is overwritten by the next successful write.
void write_file_atomic(const std::string& path, std::span<const std::uint8_t> data);

}  // namespace bwaver
