// Little-endian binary (de)serialization helpers and whole-file I/O, used by
// the pipeline to persist step-1 outputs (BWT + SA) and by the index
// save/load paths.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace bwaver {

/// Raised on malformed or truncated inputs across the io module.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends scalars/vectors to a growing byte buffer (always little-endian).
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const std::uint8_t> data);

  /// Length-prefixed (u64) byte vector.
  void vec_u8(std::span<const std::uint8_t> data);
  /// Length-prefixed (u64) u32 vector.
  void vec_u32(std::span<const std::uint32_t> data);
  /// Length-prefixed (u64) string.
  void str(const std::string& s);

  const std::vector<std::uint8_t>& data() const noexcept { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Reads scalars/vectors back; throws IoError on truncation.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  void bytes(std::span<std::uint8_t> out);

  std::vector<std::uint8_t> vec_u8();
  std::vector<std::uint32_t> vec_u32();
  std::string str();

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return pos_ == data_.size(); }

 private:
  void need(std::size_t count) const {
    if (pos_ + count > data_.size()) throw IoError("ByteReader: truncated input");
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Whole-file helpers; throw IoError on failure.
std::vector<std::uint8_t> read_file(const std::string& path);
void write_file(const std::string& path, std::span<const std::uint8_t> data);
void write_file(const std::string& path, const std::string& data);

}  // namespace bwaver
