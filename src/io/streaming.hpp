// Streaming record readers.
//
// The whole-file parsers in fasta.hpp/fastq.hpp are convenient but hold the
// entire file in memory; mapping 100 M reads (the paper's Table I/II
// workloads) needs constant-memory streaming. These readers pull one record
// at a time from a buffered source. Gzipped inputs are detected by magic
// bytes and decompressed up front (DEFLATE back-references reach 32 KiB
// behind the cursor, so fully streaming decompression would need its own
// window management; the decompressed text is still streamed record by
// record).
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "io/fasta.hpp"
#include "io/fastq.hpp"

namespace bwaver {

/// Buffered line source over a file (or an in-memory buffer for gz inputs).
class LineSource {
 public:
  /// Opens `path`; transparently inflates gzip members.
  explicit LineSource(const std::string& path);

  /// Streams from an in-memory buffer (takes ownership).
  explicit LineSource(std::vector<std::uint8_t> buffer);

  /// Next line without its terminator; false at end of input.
  bool next_line(std::string& line);

  /// Total bytes consumed so far (of the uncompressed stream).
  std::size_t bytes_consumed() const noexcept { return consumed_; }

 private:
  void refill();

  std::unique_ptr<std::ifstream> file_;
  std::vector<std::uint8_t> buffer_;
  std::size_t buffer_pos_ = 0;
  std::size_t buffer_end_ = 0;
  bool from_memory_ = false;
  bool eof_ = false;
  std::size_t consumed_ = 0;
  std::string pending_;
};

/// Pull-parser for FASTQ: `while (reader.next(record)) ...`.
class FastqStreamReader {
 public:
  explicit FastqStreamReader(const std::string& path) : source_(path) {}

  /// Fills `record` with the next entry; false at clean end of file.
  /// Throws IoError on malformed records.
  bool next(FastqRecord& record);

  std::size_t records_read() const noexcept { return count_; }

 private:
  LineSource source_;
  std::size_t count_ = 0;
};

/// Pull-parser for FASTA: yields one record per '>' header.
class FastaStreamReader {
 public:
  explicit FastaStreamReader(const std::string& path) : source_(path) {}

  bool next(FastaRecord& record);

  std::size_t records_read() const noexcept { return count_; }

 private:
  LineSource source_;
  std::string held_header_;  ///< header line consumed while reading the body
  bool have_held_ = false;
  bool done_ = false;
  std::size_t count_ = 0;
};

}  // namespace bwaver
