#include "io/fasta.hpp"

#include "io/gzip.hpp"

namespace bwaver {

namespace {
std::vector<std::uint8_t> maybe_decompress(std::span<const std::uint8_t> data) {
  if (looks_like_gzip(data)) return gzip_decompress(data);
  return {data.begin(), data.end()};
}

bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\n'; }
}  // namespace

std::vector<FastaRecord> parse_fasta(std::span<const std::uint8_t> raw) {
  const auto bytes = maybe_decompress(raw);
  const std::string_view text(reinterpret_cast<const char*>(bytes.data()), bytes.size());

  std::vector<FastaRecord> records;
  std::size_t pos = 0;
  while (pos < text.size()) {
    // Find the next line.
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    while (!line.empty() && (line.back() == '\r')) line.remove_suffix(1);
    pos = eol + 1;

    if (line.empty()) continue;
    if (line.front() == '>') {
      records.push_back(FastaRecord{std::string(line.substr(1)), {}});
      // Trim trailing whitespace from the name.
      while (!records.back().name.empty() && is_space(records.back().name.back())) {
        records.back().name.pop_back();
      }
    } else {
      if (records.empty()) {
        throw IoError("parse_fasta: sequence data before first '>' header");
      }
      for (char c : line) {
        if (!is_space(c)) records.back().sequence.push_back(c);
      }
    }
  }
  if (records.empty()) throw IoError("parse_fasta: no records found");
  for (const auto& record : records) {
    if (record.sequence.empty()) {
      throw IoError("parse_fasta: record '" + record.name + "' has empty sequence");
    }
  }
  return records;
}

std::vector<FastaRecord> read_fasta(const std::string& path) {
  const auto data = read_file(path);
  return parse_fasta(data);
}

std::string format_fasta(std::span<const FastaRecord> records, std::size_t line_width) {
  std::string out;
  for (const auto& record : records) {
    out += '>';
    out += record.name;
    out += '\n';
    for (std::size_t i = 0; i < record.sequence.size(); i += line_width) {
      out += record.sequence.substr(i, line_width);
      out += '\n';
    }
  }
  return out;
}

void write_fasta(const std::string& path, std::span<const FastaRecord> records,
                 bool gzipped, std::size_t line_width) {
  const std::string text = format_fasta(records, line_width);
  if (gzipped) {
    const auto compressed = gzip_compress(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
    write_file(path, compressed);
  } else {
    write_file(path, text);
  }
}

}  // namespace bwaver
