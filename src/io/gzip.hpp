// Self-contained gzip / DEFLATE codec (RFC 1951/1952).
//
// The paper's web pipeline accepts gzipped FASTA/FASTQ uploads; to stay
// dependency-free we implement the decompressor ourselves: a full inflate
// (stored, fixed-Huffman and dynamic-Huffman blocks) plus gzip framing with
// CRC-32 and size validation. A minimal compressor (stored or fixed-Huffman
// literal blocks — valid DEFLATE, no LZ77 matching) exists so tests can
// round-trip without external tools.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "io/byte_io.hpp"
#include "io/checksum.hpp"

namespace bwaver {

/// Raised on malformed compressed streams.
class GzipError : public IoError {
 public:
  using IoError::IoError;
};

/// Decompresses a raw DEFLATE stream. If `consumed` is non-null it receives
/// the number of input bytes the stream occupied (the final block's last
/// byte, rounded up), enabling concatenated-stream parsing.
std::vector<std::uint8_t> inflate(std::span<const std::uint8_t> compressed,
                                  std::size_t* consumed = nullptr);

/// Decompresses gzip data. Multi-member files (as produced by bgzip or by
/// concatenating .gz files) are handled: members are inflated in sequence
/// and their outputs concatenated, each validated against its own
/// CRC32/ISIZE trailer.
std::vector<std::uint8_t> gzip_decompress(std::span<const std::uint8_t> compressed);

enum class DeflateMode {
  kStored,        ///< uncompressed stored blocks
  kFixedHuffman,  ///< fixed-Huffman coded literals (no matches)
};

/// Compresses to a raw DEFLATE stream.
std::vector<std::uint8_t> deflate(std::span<const std::uint8_t> data,
                                  DeflateMode mode = DeflateMode::kFixedHuffman);

/// Wraps deflate output in a gzip member.
std::vector<std::uint8_t> gzip_compress(std::span<const std::uint8_t> data,
                                        DeflateMode mode = DeflateMode::kFixedHuffman);

/// True if `data` starts with the gzip magic bytes 0x1f 0x8b.
bool looks_like_gzip(std::span<const std::uint8_t> data) noexcept;

}  // namespace bwaver
