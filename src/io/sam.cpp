#include "io/sam.hpp"

namespace bwaver {

std::string format_sam(std::span<const SamSequence> sequences,
                       std::span<const SamAlignment> alignments) {
  std::string out;
  out += "@HD\tVN:1.6\tSO:unsorted\n";
  for (const SamSequence& seq : sequences) {
    out += "@SQ\tSN:" + seq.name + "\tLN:" + std::to_string(seq.length) + "\n";
  }
  out += "@PG\tID:bwaver\tPN:bwaver\tVN:1.0\n";
  out += format_sam_alignments(alignments);
  return out;
}

std::string format_sam_alignments(std::span<const SamAlignment> alignments) {
  std::string out;
  for (const auto& aln : alignments) {
    // FLAG: 4 = unmapped, 16 = reverse strand.
    unsigned flag = 0;
    if (!aln.mapped) flag |= 4;
    if (aln.reverse_strand) flag |= 16;
    out += aln.read_name;
    out += '\t';
    out += std::to_string(flag);
    out += '\t';
    out += aln.mapped ? aln.reference_name : "*";
    out += '\t';
    out += std::to_string(aln.mapped ? aln.position + 1 : 0);
    out += '\t';
    out += aln.mapped ? "60" : "0";  // MAPQ: exact match or unmapped
    out += '\t';
    if (aln.mapped) {
      out += std::to_string(aln.length);
      out += "M";
    } else {
      out += "*";
    }
    out += "\t*\t0\t0\t*\t*\n";
  }
  return out;
}

std::string format_sam(const std::string& reference_name, std::uint64_t reference_length,
                       std::span<const SamAlignment> alignments) {
  const SamSequence sequence{reference_name, reference_length};
  return format_sam(std::span<const SamSequence>(&sequence, 1), alignments);
}

}  // namespace bwaver
