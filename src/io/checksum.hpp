// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum shared
// by the gzip framing layer and the index-archive section table.
#pragma once

#include <cstdint>
#include <span>

namespace bwaver {

/// CRC-32 (IEEE, reflected) of `data`, seeded with `seed` for incremental use.
std::uint32_t crc32_ieee(std::span<const std::uint8_t> data, std::uint32_t seed = 0);

}  // namespace bwaver
