// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum shared
// by the gzip framing layer and the index-archive section table.
//
// The implementation picks the fastest kernel available at runtime: a
// PCLMULQDQ carry-less-multiply folding loop on x86-64 (the archive v3 mmap
// load verifies every section checksum at open, so CRC throughput is the
// floor on warm load latency), falling back to portable slice-by-8.
#pragma once

#include <cstdint>
#include <span>

namespace bwaver {

/// CRC-32 (IEEE, reflected) of `data`, seeded with `seed` for incremental use.
std::uint32_t crc32_ieee(std::span<const std::uint8_t> data, std::uint32_t seed = 0);

/// Portable slice-by-8 kernel, exposed so tests can cross-check the
/// hardware-accelerated path against it on the same inputs.
std::uint32_t crc32_ieee_portable(std::span<const std::uint8_t> data,
                                  std::uint32_t seed = 0);

}  // namespace bwaver
