#include "io/streaming.hpp"

#include <fstream>

#include "io/gzip.hpp"

namespace bwaver {

namespace {
constexpr std::size_t kChunk = 1 << 16;

bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\n'; }
}  // namespace

LineSource::LineSource(const std::string& path) {
  // Sniff the magic bytes to decide between streaming and inflate-first.
  std::ifstream probe(path, std::ios::binary);
  if (!probe) throw IoError("LineSource: cannot open " + path);
  unsigned char magic[2] = {0, 0};
  probe.read(reinterpret_cast<char*>(magic), 2);
  probe.close();

  if (magic[0] == 0x1f && magic[1] == 0x8b) {
    buffer_ = gzip_decompress(read_file(path));
    buffer_end_ = buffer_.size();
    from_memory_ = true;
  } else {
    file_ = std::make_unique<std::ifstream>(path, std::ios::binary);
    buffer_.resize(kChunk);
  }
}

LineSource::LineSource(std::vector<std::uint8_t> buffer)
    : buffer_(std::move(buffer)), buffer_end_(buffer_.size()), from_memory_(true) {
  if (looks_like_gzip(buffer_)) {
    buffer_ = gzip_decompress(buffer_);
    buffer_end_ = buffer_.size();
  }
}

void LineSource::refill() {
  if (from_memory_ || eof_) {
    eof_ = true;
    return;
  }
  file_->read(reinterpret_cast<char*>(buffer_.data()), static_cast<std::streamsize>(kChunk));
  buffer_pos_ = 0;
  buffer_end_ = static_cast<std::size_t>(file_->gcount());
  if (buffer_end_ == 0) eof_ = true;
}

bool LineSource::next_line(std::string& line) {
  line.clear();
  for (;;) {
    if (buffer_pos_ >= buffer_end_) {
      if (from_memory_) {
        break;  // memory source exhausted
      }
      refill();
      if (eof_) break;
    }
    const char c = static_cast<char>(buffer_[buffer_pos_++]);
    ++consumed_;
    if (c == '\n') {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    line.push_back(c);
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return !line.empty();  // final line without terminator
}

bool FastqStreamReader::next(FastqRecord& record) {
  std::string line;
  // Skip blank separator lines.
  do {
    if (!source_.next_line(line)) return false;
  } while (line.empty());

  if (line.front() != '@') {
    throw IoError("FastqStreamReader: record " + std::to_string(count_) +
                  ": expected '@' header");
  }
  record.name.assign(line.begin() + 1, line.end());

  if (!source_.next_line(record.sequence)) {
    throw IoError("FastqStreamReader: truncated record (no sequence)");
  }
  if (!source_.next_line(line) || line.empty() || line.front() != '+') {
    throw IoError("FastqStreamReader: record " + std::to_string(count_) +
                  ": missing '+' separator");
  }
  if (!source_.next_line(record.quality)) {
    throw IoError("FastqStreamReader: truncated record (no quality)");
  }
  if (record.quality.size() != record.sequence.size()) {
    throw IoError("FastqStreamReader: record " + std::to_string(count_) +
                  ": quality/sequence length mismatch");
  }
  ++count_;
  return true;
}

bool FastaStreamReader::next(FastaRecord& record) {
  if (done_) return false;

  std::string line;
  if (!have_held_) {
    // Find the first header.
    for (;;) {
      if (!source_.next_line(line)) {
        done_ = true;
        return false;
      }
      if (line.empty()) continue;
      if (line.front() != '>') {
        throw IoError("FastaStreamReader: data before first '>' header");
      }
      break;
    }
  } else {
    line = held_header_;
    have_held_ = false;
  }

  record.name.assign(line.begin() + 1, line.end());
  while (!record.name.empty() && is_space(record.name.back())) record.name.pop_back();
  record.sequence.clear();

  while (source_.next_line(line)) {
    if (line.empty()) continue;
    if (line.front() == '>') {
      held_header_ = line;
      have_held_ = true;
      break;
    }
    for (char c : line) {
      if (!is_space(c)) record.sequence.push_back(c);
    }
  }
  if (!have_held_) done_ = true;
  if (record.sequence.empty()) {
    throw IoError("FastaStreamReader: record '" + record.name + "' has empty sequence");
  }
  ++count_;
  return true;
}

}  // namespace bwaver
