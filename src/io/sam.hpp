// Minimal SAM-style output for mapping results: header plus one line per
// reported occurrence (exact matches only, so CIGAR is always <len>M).
// This is the "results made available for download" artifact of the
// paper's pipeline. Multi-sequence references emit one @SQ line per
// chromosome/contig.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bwaver {

struct SamSequence {
  std::string name;
  std::uint64_t length = 0;
};

struct SamAlignment {
  std::string read_name;
  bool reverse_strand = false;
  std::string reference_name;  ///< per-hit (multi-chromosome references)
  std::uint32_t position = 0;  ///< 0-based; SAM output converts to 1-based
  std::uint32_t length = 0;
  bool mapped = true;
};

/// Renders a SAM document: @HD/@SQ/@PG header plus alignment lines.
std::string format_sam(std::span<const SamSequence> sequences,
                       std::span<const SamAlignment> alignments);

/// Renders alignment lines only (streaming emission after a header).
std::string format_sam_alignments(std::span<const SamAlignment> alignments);

/// Single-reference convenience overload.
std::string format_sam(const std::string& reference_name, std::uint64_t reference_length,
                       std::span<const SamAlignment> alignments);

}  // namespace bwaver
