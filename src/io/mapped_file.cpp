#include "io/mapped_file.hpp"

#include <cstring>
#include <utility>

#include "io/byte_io.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define BWAVER_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define BWAVER_HAVE_MMAP 0
#include <cstdio>
#endif

namespace bwaver {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw IoError("MappedFile: " + what + ": " + path);
}

}  // namespace

#if BWAVER_HAVE_MMAP

MappedFile::MappedFile(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("cannot open", path);
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    fail("cannot stat", path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  mapped_ = true;
  if (size_ == 0) {
    ::close(fd);
    return;  // nothing to map; bytes() is an empty span
  }
  void* base = ::mmap(nullptr, size_, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the file
  if (base == MAP_FAILED) {
    size_ = 0;
    mapped_ = false;
    fail("mmap failed", path);
  }
  data_ = static_cast<const std::uint8_t*>(base);
}

void MappedFile::advise(Advice advice) const noexcept {
  if (!mapped_ || data_ == nullptr) return;
  int hint = MADV_NORMAL;
  switch (advice) {
    case Advice::kNormal:
      hint = MADV_NORMAL;
      break;
    case Advice::kSequential:
      hint = MADV_SEQUENTIAL;
      break;
    case Advice::kRandom:
      hint = MADV_RANDOM;
      break;
    case Advice::kWillNeed:
      hint = MADV_WILLNEED;
      break;
  }
  ::madvise(const_cast<std::uint8_t*>(data_), size_, hint);
}

bool MappedFile::supported() noexcept { return true; }

void MappedFile::reset() noexcept {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.reset();
}

#else  // !BWAVER_HAVE_MMAP: read the file into an aligned heap buffer.

MappedFile::MappedFile(const std::string& path) : path_(path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) fail("cannot open", path);
  std::fseek(file, 0, SEEK_END);
  const long end = std::ftell(file);
  if (end < 0) {
    std::fclose(file);
    fail("cannot stat", path);
  }
  std::fseek(file, 0, SEEK_SET);
  size_ = static_cast<std::size_t>(end);
  // uint64_t granularity keeps the buffer aligned for the widest element
  // type adopted out of an archive section.
  fallback_ = std::make_unique<std::uint64_t[]>((size_ + 7) / 8);
  data_ = reinterpret_cast<const std::uint8_t*>(fallback_.get());
  if (size_ != 0 &&
      std::fread(fallback_.get(), 1, size_, file) != size_) {
    std::fclose(file);
    fail("short read", path);
  }
  std::fclose(file);
}

void MappedFile::advise(Advice) const noexcept {}

bool MappedFile::supported() noexcept { return false; }

void MappedFile::reset() noexcept {
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.reset();
}

#endif  // BWAVER_HAVE_MMAP

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)),
      path_(std::move(other.path_)),
      fallback_(std::move(other.fallback_)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    path_ = std::move(other.path_);
    fallback_ = std::move(other.fallback_);
  }
  return *this;
}

MappedFile::~MappedFile() { reset(); }

}  // namespace bwaver
