#include "io/checksum.hpp"

#include <array>

namespace bwaver {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32_ieee(std::span<const std::uint8_t> data, std::uint32_t seed) {
  static const auto table = make_crc_table();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace bwaver
