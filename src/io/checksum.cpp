#include "io/checksum.hpp"

#include <array>
#include <cstddef>

#include "util/cpu_features.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define BWAVER_CRC_CLMUL 1
#include <immintrin.h>
#else
#define BWAVER_CRC_CLMUL 0
#endif

namespace bwaver {

namespace {

// Eight derived tables: tables[0] is the classic byte-at-a-time table and
// tables[k] advances the CRC by k additional zero bytes, letting the main
// loop consume 8 input bytes per iteration (slice-by-8).
std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::size_t t = 1; t < 8; ++t) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables[t - 1][i];
      tables[t][i] = tables[0][prev & 0xFF] ^ (prev >> 8);
    }
  }
  return tables;
}

const std::array<std::array<std::uint32_t, 256>, 8>& crc_tables() {
  static const auto tables = make_crc_tables();
  return tables;
}

inline std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

// Raw kernel: no pre/post inversion, `crc` is the conditioned running value.
std::uint32_t crc_update_raw(std::uint32_t crc, const std::uint8_t* p,
                             std::size_t len) {
  const auto& tab = crc_tables();
  while (len >= 8) {
    const std::uint32_t lo = crc ^ load_le32(p);
    const std::uint32_t hi = load_le32(p + 4);
    crc = tab[7][lo & 0xFF] ^ tab[6][(lo >> 8) & 0xFF] ^
          tab[5][(lo >> 16) & 0xFF] ^ tab[4][lo >> 24] ^ tab[3][hi & 0xFF] ^
          tab[2][(hi >> 8) & 0xFF] ^ tab[1][(hi >> 16) & 0xFF] ^
          tab[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    crc = tab[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

#if BWAVER_CRC_CLMUL

// PCLMULQDQ folding (Intel "Fast CRC Computation Using PCLMULQDQ", reflected
// CRC-32). Four 128-bit lanes fold 64 input bytes per iteration; the lanes
// are then folded into one and the final 16-byte state plus any tail is
// finished with the table kernel, which sidesteps the Barrett reduction.
// Fold constants are x^k mod P for the lane distances (the +/-32 pair
// accounts for the reflected bit order):
//   k1 = x^(4*128+32) mod P = 0x154442bd4   k2 = x^(4*128-32) mod P = 0x1c6e41596
//   k3 = x^(128+32) mod P   = 0x1751997d0   k4 = x^(128-32) mod P   = 0x0ccaa009e
__attribute__((target("pclmul,sse4.1"))) inline __m128i fold_128(
    __m128i acc, __m128i data, __m128i k) {
  const __m128i lo = _mm_clmulepi64_si128(acc, k, 0x00);
  const __m128i hi = _mm_clmulepi64_si128(acc, k, 0x11);
  return _mm_xor_si128(_mm_xor_si128(lo, hi), data);
}

__attribute__((target("pclmul,sse4.1"))) std::uint32_t crc_update_clmul(
    std::uint32_t crc, const std::uint8_t* p, std::size_t len) {
  // Caller guarantees len >= 64.
  const __m128i k1k2 =
      _mm_set_epi64x(0x1c6e41596LL, 0x154442bd4LL);
  const __m128i k3k4 =
      _mm_set_epi64x(0x0ccaa009eLL, 0x1751997d0LL);

  __m128i x0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
  __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32));
  __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48));
  x0 = _mm_xor_si128(x0, _mm_cvtsi32_si128(static_cast<int>(crc)));
  p += 64;
  len -= 64;

  while (len >= 64) {
    x0 = fold_128(x0, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)),
                  k1k2);
    x1 = fold_128(
        x1, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16)), k1k2);
    x2 = fold_128(
        x2, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32)), k1k2);
    x3 = fold_128(
        x3, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48)), k1k2);
    p += 64;
    len -= 64;
  }

  __m128i x = fold_128(x0, x1, k3k4);
  x = fold_128(x, x2, k3k4);
  x = fold_128(x, x3, k3k4);
  while (len >= 16) {
    x = fold_128(x, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)),
                 k3k4);
    p += 16;
    len -= 16;
  }

  alignas(16) std::uint8_t state[16];
  _mm_store_si128(reinterpret_cast<__m128i*>(state), x);
  std::uint32_t out = crc_update_raw(0, state, sizeof(state));
  return crc_update_raw(out, p, len);
}

bool cpu_has_clmul() { return cpu_features().pclmul; }

#endif  // BWAVER_CRC_CLMUL

}  // namespace

std::uint32_t crc32_ieee_portable(std::span<const std::uint8_t> data,
                                  std::uint32_t seed) {
  return crc_update_raw(seed ^ 0xFFFFFFFFu, data.data(), data.size()) ^
         0xFFFFFFFFu;
}

std::uint32_t crc32_ieee(std::span<const std::uint8_t> data,
                         std::uint32_t seed) {
#if BWAVER_CRC_CLMUL
  if (data.size() >= 128 && cpu_has_clmul()) {
    return crc_update_clmul(seed ^ 0xFFFFFFFFu, data.data(), data.size()) ^
           0xFFFFFFFFu;
  }
#endif
  return crc32_ieee_portable(data, seed);
}

}  // namespace bwaver
