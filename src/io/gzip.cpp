#include "io/gzip.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <utility>

namespace bwaver {

namespace {

// ------------------------------------------------------------ bit reader

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Next `count` bits, LSB-first (count <= 32).
  std::uint32_t bits(unsigned count) {
    while (bit_count_ < count) {
      if (pos_ >= data_.size()) throw GzipError("inflate: truncated stream");
      acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << bit_count_;
      bit_count_ += 8;
    }
    const std::uint32_t value =
        static_cast<std::uint32_t>(acc_ & ((std::uint64_t{1} << count) - 1));
    acc_ >>= count;
    bit_count_ -= count;
    return value;
  }

  std::uint32_t bit() { return bits(1); }

  /// Discards buffered bits to the next byte boundary (stored blocks).
  void align() {
    const unsigned drop = bit_count_ & 7;
    acc_ >>= drop;
    bit_count_ -= drop;
  }

  /// Copies `count` raw bytes (must be byte-aligned).
  void raw(std::uint8_t* out, std::size_t count) {
    while (count > 0 && bit_count_ >= 8) {
      *out++ = static_cast<std::uint8_t>(acc_);
      acc_ >>= 8;
      bit_count_ -= 8;
      --count;
    }
    if (pos_ + count > data_.size()) throw GzipError("inflate: truncated stored block");
    std::memcpy(out, data_.data() + pos_, count);
    pos_ += count;
  }

  std::size_t byte_position() const noexcept { return pos_; }

  /// Input bytes consumed, counting a partially-used byte as consumed but
  /// giving back whole buffered bytes (a DEFLATE stream ends mid-byte; the
  /// next gzip member starts at the following byte boundary).
  std::size_t byte_position_after_bits() const noexcept {
    return pos_ - bit_count_ / 8;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  unsigned bit_count_ = 0;
};

// -------------------------------------------------------- Huffman tables

/// Canonical Huffman decoder built from code lengths (RFC 1951 Sec. 3.2.2).
class HuffmanDecoder {
 public:
  void build(std::span<const std::uint8_t> lengths) {
    constexpr unsigned kMaxBits = 15;
    count_.assign(kMaxBits + 1, 0);
    for (std::uint8_t len : lengths) {
      if (len > kMaxBits) throw GzipError("inflate: code length too long");
      ++count_[len];
    }
    count_[0] = 0;

    // Over-subscribed or incomplete codes are invalid (except the trivial
    // empty/one-code cases the RFC tolerates for distance trees).
    int left = 1;
    for (unsigned len = 1; len <= kMaxBits; ++len) {
      left <<= 1;
      left -= static_cast<int>(count_[len]);
      if (left < 0) throw GzipError("inflate: over-subscribed Huffman code");
    }

    offsets_.assign(kMaxBits + 2, 0);
    for (unsigned len = 1; len <= kMaxBits; ++len) {
      offsets_[len + 1] = offsets_[len] + count_[len];
    }
    symbols_.assign(lengths.size(), 0);
    std::vector<std::uint16_t> next(offsets_.begin(), offsets_.end());
    for (std::size_t sym = 0; sym < lengths.size(); ++sym) {
      if (lengths[sym] != 0) {
        symbols_[next[lengths[sym]]++] = static_cast<std::uint16_t>(sym);
      }
    }
  }

  std::uint16_t decode(BitReader& in) const {
    int code = 0;
    int first = 0;
    int index = 0;
    for (unsigned len = 1; len <= 15; ++len) {
      code |= static_cast<int>(in.bit());
      const int num = count_[len];
      if (code - first < num) {
        return symbols_[index + (code - first)];
      }
      index += num;
      first = (first + num) << 1;
      code <<= 1;
    }
    throw GzipError("inflate: invalid Huffman code");
  }

 private:
  std::vector<std::uint16_t> count_;
  std::vector<std::uint16_t> offsets_;
  std::vector<std::uint16_t> symbols_;
};

// Length/distance code tables (RFC 1951 Sec. 3.2.5).
constexpr std::uint16_t kLengthBase[29] = {3,  4,  5,  6,  7,  8,  9,  10, 11,  13,
                                           15, 17, 19, 23, 27, 31, 35, 43, 51,  59,
                                           67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::uint8_t kLengthExtra[29] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
                                           2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};
constexpr std::uint16_t kDistBase[30] = {1,    2,    3,    4,    5,    7,     9,    13,
                                         17,   25,   33,   49,   65,   97,    129,  193,
                                         257,  385,  513,  769,  1025, 1537,  2049, 3073,
                                         4097, 6145, 8193, 12289, 16385, 24577};
constexpr std::uint8_t kDistExtra[30] = {0, 0, 0, 0, 1, 1, 2, 2,  3,  3,  4,  4,  5,  5, 6,
                                         6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

void fixed_trees(HuffmanDecoder& lit, HuffmanDecoder& dist) {
  std::vector<std::uint8_t> lit_lengths(288);
  for (int i = 0; i < 144; ++i) lit_lengths[i] = 8;
  for (int i = 144; i < 256; ++i) lit_lengths[i] = 9;
  for (int i = 256; i < 280; ++i) lit_lengths[i] = 7;
  for (int i = 280; i < 288; ++i) lit_lengths[i] = 8;
  lit.build(lit_lengths);
  std::vector<std::uint8_t> dist_lengths(30, 5);
  dist.build(dist_lengths);
}

void dynamic_trees(BitReader& in, HuffmanDecoder& lit, HuffmanDecoder& dist) {
  const unsigned hlit = in.bits(5) + 257;
  const unsigned hdist = in.bits(5) + 1;
  const unsigned hclen = in.bits(4) + 4;
  if (hlit > 286 || hdist > 30) throw GzipError("inflate: bad dynamic header");

  static constexpr std::uint8_t kOrder[19] = {16, 17, 18, 0, 8,  7, 9,  6, 10, 5,
                                              11, 4,  12, 3, 13, 2, 14, 1, 15};
  std::vector<std::uint8_t> code_lengths(19, 0);
  for (unsigned i = 0; i < hclen; ++i) {
    code_lengths[kOrder[i]] = static_cast<std::uint8_t>(in.bits(3));
  }
  HuffmanDecoder code_tree;
  code_tree.build(code_lengths);

  std::vector<std::uint8_t> lengths;
  lengths.reserve(hlit + hdist);
  while (lengths.size() < hlit + hdist) {
    const std::uint16_t sym = code_tree.decode(in);
    if (sym < 16) {
      lengths.push_back(static_cast<std::uint8_t>(sym));
    } else if (sym == 16) {
      if (lengths.empty()) throw GzipError("inflate: repeat with no previous length");
      const unsigned repeat = in.bits(2) + 3;
      lengths.insert(lengths.end(), repeat, lengths.back());
    } else if (sym == 17) {
      lengths.insert(lengths.end(), in.bits(3) + 3, 0);
    } else {
      lengths.insert(lengths.end(), in.bits(7) + 11, 0);
    }
  }
  if (lengths.size() != hlit + hdist) throw GzipError("inflate: length overrun");

  lit.build(std::span<const std::uint8_t>(lengths.data(), hlit));
  dist.build(std::span<const std::uint8_t>(lengths.data() + hlit, hdist));
}

void inflate_block(BitReader& in, const HuffmanDecoder& lit, const HuffmanDecoder& dist,
                   std::vector<std::uint8_t>& out) {
  for (;;) {
    const std::uint16_t sym = lit.decode(in);
    if (sym < 256) {
      out.push_back(static_cast<std::uint8_t>(sym));
    } else if (sym == 256) {
      return;  // end of block
    } else {
      if (sym > 285) throw GzipError("inflate: invalid length symbol");
      const unsigned idx = sym - 257;
      const std::size_t length = kLengthBase[idx] + in.bits(kLengthExtra[idx]);
      const std::uint16_t dsym = dist.decode(in);
      if (dsym > 29) throw GzipError("inflate: invalid distance symbol");
      const std::size_t distance = kDistBase[dsym] + in.bits(kDistExtra[dsym]);
      if (distance > out.size()) throw GzipError("inflate: distance beyond output");
      std::size_t from = out.size() - distance;
      for (std::size_t k = 0; k < length; ++k) {
        out.push_back(out[from + k]);  // may overlap; byte-by-byte is correct
      }
    }
  }
}

// ------------------------------------------------------------ bit writer

class BitWriter {
 public:
  void bits(std::uint32_t value, unsigned count) {
    acc_ |= static_cast<std::uint64_t>(value & ((1u << count) - 1)) << bit_count_;
    bit_count_ += count;
    while (bit_count_ >= 8) {
      out_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ >>= 8;
      bit_count_ -= 8;
    }
  }

  void align() {
    if (bit_count_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ = 0;
      bit_count_ = 0;
    }
  }

  void raw(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  std::vector<std::uint8_t> take() {
    align();
    return std::move(out_);
  }

 private:
  std::vector<std::uint8_t> out_;
  std::uint64_t acc_ = 0;
  unsigned bit_count_ = 0;
};

/// Fixed-Huffman code for a literal byte, returned bit-reversed (DEFLATE
/// writes Huffman codes MSB-first into the LSB-first bit stream).
std::pair<std::uint32_t, unsigned> fixed_literal_code(unsigned literal) {
  std::uint32_t code;
  unsigned len;
  if (literal < 144) {
    code = 0x30 + literal;
    len = 8;
  } else {
    code = 0x190 + (literal - 144);
    len = 9;
  }
  std::uint32_t reversed = 0;
  for (unsigned i = 0; i < len; ++i) reversed |= ((code >> i) & 1) << (len - 1 - i);
  return {reversed, len};
}

}  // namespace

std::vector<std::uint8_t> inflate(std::span<const std::uint8_t> compressed,
                                  std::size_t* consumed) {
  BitReader in(compressed);
  std::vector<std::uint8_t> out;
  bool final_block = false;
  while (!final_block) {
    final_block = in.bit() != 0;
    const std::uint32_t type = in.bits(2);
    if (type == 0) {
      in.align();
      const std::uint32_t len = in.bits(16);
      const std::uint32_t nlen = in.bits(16);
      if ((len ^ 0xFFFF) != nlen) throw GzipError("inflate: stored block LEN/NLEN mismatch");
      const std::size_t old = out.size();
      out.resize(old + len);
      in.raw(out.data() + old, len);
    } else if (type == 1) {
      HuffmanDecoder lit, dist;
      fixed_trees(lit, dist);
      inflate_block(in, lit, dist, out);
    } else if (type == 2) {
      HuffmanDecoder lit, dist;
      dynamic_trees(in, lit, dist);
      inflate_block(in, lit, dist, out);
    } else {
      throw GzipError("inflate: reserved block type");
    }
  }
  if (consumed) *consumed = in.byte_position_after_bits();
  return out;
}

namespace {

/// Decompresses one gzip member starting at `pos`; returns the position
/// just past its trailer and appends the payload to `out`.
std::size_t decompress_member(std::span<const std::uint8_t> data, std::size_t start,
                              std::vector<std::uint8_t>& out) {
  auto member = data.subspan(start);
  if (member.size() < 18) throw GzipError("gzip: input shorter than minimal member");
  if (member[0] != 0x1f || member[1] != 0x8b) throw GzipError("gzip: bad magic");
  if (member[2] != 8) throw GzipError("gzip: unsupported compression method");
  const std::uint8_t flags = member[3];
  std::size_t pos = 10;

  if (flags & 0x04) {  // FEXTRA
    if (pos + 2 > member.size()) throw GzipError("gzip: truncated FEXTRA");
    const std::size_t xlen = member[pos] | (member[pos + 1] << 8);
    pos += 2 + xlen;
  }
  if (flags & 0x08) {  // FNAME
    while (pos < member.size() && member[pos] != 0) ++pos;
    ++pos;
  }
  if (flags & 0x10) {  // FCOMMENT
    while (pos < member.size() && member[pos] != 0) ++pos;
    ++pos;
  }
  if (flags & 0x02) pos += 2;  // FHCRC
  if (pos + 8 > member.size()) throw GzipError("gzip: truncated member");

  std::size_t deflate_consumed = 0;
  auto payload =
      inflate(member.subspan(pos, member.size() - pos - 8), &deflate_consumed);
  pos += deflate_consumed;
  if (pos + 8 > member.size()) throw GzipError("gzip: truncated trailer");

  const auto trailer = member.subspan(pos, 8);
  std::uint32_t crc = 0, isize = 0;
  for (int i = 0; i < 4; ++i) crc |= static_cast<std::uint32_t>(trailer[i]) << (8 * i);
  for (int i = 0; i < 4; ++i) isize |= static_cast<std::uint32_t>(trailer[4 + i]) << (8 * i);
  if (crc32_ieee(payload) != crc) throw GzipError("gzip: CRC mismatch");
  if (static_cast<std::uint32_t>(payload.size()) != isize) {
    throw GzipError("gzip: size mismatch");
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return start + pos + 8;
}

}  // namespace

std::vector<std::uint8_t> gzip_decompress(std::span<const std::uint8_t> compressed) {
  std::vector<std::uint8_t> out;
  std::size_t pos = 0;
  do {
    pos = decompress_member(compressed, pos, out);
  } while (pos < compressed.size());
  return out;
}

std::vector<std::uint8_t> deflate(std::span<const std::uint8_t> data, DeflateMode mode) {
  BitWriter out;
  if (mode == DeflateMode::kStored) {
    constexpr std::size_t kMaxStored = 0xFFFF;
    std::size_t pos = 0;
    do {
      const std::size_t chunk = std::min(kMaxStored, data.size() - pos);
      const bool final_block = pos + chunk == data.size();
      out.bits(final_block ? 1 : 0, 1);
      out.bits(0, 2);  // stored
      out.align();
      const auto len = static_cast<std::uint16_t>(chunk);
      const std::uint8_t header[4] = {
          static_cast<std::uint8_t>(len), static_cast<std::uint8_t>(len >> 8),
          static_cast<std::uint8_t>(~len), static_cast<std::uint8_t>(~len >> 8)};
      out.raw(header);
      out.raw(data.subspan(pos, chunk));
      pos += chunk;
    } while (pos < data.size());  // empty input emits one empty final block
  } else {
    out.bits(1, 1);  // final
    out.bits(1, 2);  // fixed Huffman
    for (std::uint8_t byte : data) {
      const auto [code, len] = fixed_literal_code(byte);
      out.bits(code, len);
    }
    const auto [eob, eob_len] = std::pair<std::uint32_t, unsigned>{0, 7};  // symbol 256
    out.bits(eob, eob_len);
  }
  return out.take();
}

std::vector<std::uint8_t> gzip_compress(std::span<const std::uint8_t> data,
                                        DeflateMode mode) {
  std::vector<std::uint8_t> out = {0x1f, 0x8b, 8, 0, 0, 0, 0, 0, 0, 0xFF};
  auto body = deflate(data, mode);
  out.insert(out.end(), body.begin(), body.end());
  const std::uint32_t crc = crc32_ieee(data);
  const auto isize = static_cast<std::uint32_t>(data.size());
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(isize >> (8 * i)));
  return out;
}

bool looks_like_gzip(std::span<const std::uint8_t> data) noexcept {
  return data.size() >= 2 && data[0] == 0x1f && data[1] == 0x8b;
}

}  // namespace bwaver
