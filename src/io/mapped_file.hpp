// Read-only memory-mapped file with a portable read() fallback.
//
// The zero-copy archive load path (docs/index_store.md, format v3) maps the
// whole `.bwva` file MAP_SHARED | PROT_READ and adopts the section payloads
// in place. The mapping is page-cache backed: a warm reload touches no disk,
// concurrent processes serving the same reference share the physical pages,
// and eviction is just munmap — the kernel reclaims the pages lazily.
//
// On platforms without POSIX mmap the class degrades to reading the file
// into a 64-byte-aligned heap buffer; callers see the same bytes() span and
// only mapped() / supported() report the difference.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

namespace bwaver {

class MappedFile {
 public:
  /// Access-pattern hint forwarded to madvise() when the file is mapped.
  enum class Advice { kNormal, kSequential, kRandom, kWillNeed };

  MappedFile() = default;

  /// Maps `path` read-only; throws IoError when the file cannot be opened,
  /// stat'ed, or mapped. An empty file yields an empty bytes() span.
  explicit MappedFile(const std::string& path);

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  std::span<const std::uint8_t> bytes() const noexcept {
    return {data_, size_};
  }
  std::size_t size() const noexcept { return size_; }
  const std::string& path() const noexcept { return path_; }

  /// True when the bytes are a real mmap (false for the read() fallback).
  bool mapped() const noexcept { return mapped_; }

  /// Forwards the hint to madvise(); a no-op for the fallback buffer.
  void advise(Advice advice) const noexcept;

  /// True when this build uses real mmap (POSIX).
  static bool supported() noexcept;

 private:
  void reset() noexcept;

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::string path_;
  std::unique_ptr<std::uint64_t[]> fallback_;  ///< owns bytes when !mapped_
};

}  // namespace bwaver
