// FASTQ reading/writing with transparent gzip support.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "io/byte_io.hpp"

namespace bwaver {

struct FastqRecord {
  std::string name;      ///< without the leading '@'
  std::string sequence;
  std::string quality;   ///< same length as sequence
};

/// Parses FASTQ from an in-memory buffer (gzip detected by magic bytes).
/// Throws IoError on malformed records (bad markers, quality/sequence
/// length mismatch, truncation).
std::vector<FastqRecord> parse_fastq(std::span<const std::uint8_t> data);

/// Reads and parses a FASTQ (or FASTQ.gz) file.
std::vector<FastqRecord> read_fastq(const std::string& path);

std::string format_fastq(std::span<const FastqRecord> records);

void write_fastq(const std::string& path, std::span<const FastqRecord> records,
                 bool gzipped = false);

}  // namespace bwaver
