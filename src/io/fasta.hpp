// FASTA reading/writing with transparent gzip support (the pipeline accepts
// both plain and gzipped references, per the paper's web workflow).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "io/byte_io.hpp"

namespace bwaver {

struct FastaRecord {
  std::string name;      ///< header line without the leading '>'
  std::string sequence;  ///< concatenated sequence lines
};

/// Parses FASTA from an in-memory buffer (gzip detected by magic bytes).
/// Throws IoError on structural problems (no records, data before the first
/// header, empty sequences).
std::vector<FastaRecord> parse_fasta(std::span<const std::uint8_t> data);

/// Reads and parses a FASTA (or FASTA.gz) file.
std::vector<FastaRecord> read_fasta(const std::string& path);

/// Serializes records with sequence lines wrapped at `line_width`.
std::string format_fasta(std::span<const FastaRecord> records,
                         std::size_t line_width = 70);

/// Writes a FASTA file; gzip-compresses when `gzipped` is true.
void write_fasta(const std::string& path, std::span<const FastaRecord> records,
                 bool gzipped = false, std::size_t line_width = 70);

}  // namespace bwaver
